"""Genomics substrate: sequences, k-mers, file formats, simulators.

This package provides everything the classifier consumes:

- :mod:`repro.genomics.alphabet` -- nucleotide codes and string
  conversion (A=0, C=1, G=2, T=3; anything else is an ambiguous base).
- :mod:`repro.genomics.kmers` -- vectorized canonical k-mer extraction
  from encoded sequences, with validity masking of ambiguous bases.
- :mod:`repro.genomics.windows` -- the window partitioning used by
  MetaCache (length ``w``, overlap ``k-1``).
- :mod:`repro.genomics.fasta` / :mod:`repro.genomics.fastq` -- plain
  text sequence IO compatible with the common formats.
- :mod:`repro.genomics.io` -- format-sniffing reader over both
  (plain or gzip'd), used by the CLI and :mod:`repro.api`.
- :mod:`repro.genomics.simulate` -- synthetic reference genomes with a
  phylogeny-shaped mutation structure (the RefSeq / AFS stand-ins).
- :mod:`repro.genomics.reads` -- Illumina-like read simulation
  (HiSeq / MiSeq / paired-end profiles) with ground-truth labels.
- :mod:`repro.genomics.community` -- mock communities and food-matrix
  mixtures used by the accuracy and abundance experiments.
"""

from repro.genomics.alphabet import (
    encode_sequence,
    decode_sequence,
    complement_codes,
    reverse_complement_str,
    A,
    C,
    G,
    T,
    AMBIG,
)
from repro.genomics.kmers import (
    pack_kmers,
    canonical_kmers,
    kmer_validity,
    valid_canonical_kmers,
)
from repro.genomics.windows import WindowLayout, num_windows, window_slices
from repro.genomics.fasta import read_fasta, write_fasta, FastaRecord
from repro.genomics.fastq import read_fastq, write_fastq, FastqRecord
from repro.genomics.io import (
    iter_sequence_records,
    open_sequence_file,
    read_sequences,
)
from repro.genomics.simulate import GenomeSimulator, SimulatedGenome
from repro.genomics.reads import ReadSimulator, ReadProfile, SimulatedReads
from repro.genomics.community import MockCommunity, CommunityMember

__all__ = [
    "encode_sequence",
    "decode_sequence",
    "complement_codes",
    "reverse_complement_str",
    "A",
    "C",
    "G",
    "T",
    "AMBIG",
    "pack_kmers",
    "canonical_kmers",
    "kmer_validity",
    "valid_canonical_kmers",
    "WindowLayout",
    "num_windows",
    "window_slices",
    "read_fasta",
    "write_fasta",
    "FastaRecord",
    "read_fastq",
    "write_fastq",
    "FastqRecord",
    "iter_sequence_records",
    "open_sequence_file",
    "read_sequences",
    "GenomeSimulator",
    "SimulatedGenome",
    "ReadSimulator",
    "ReadProfile",
    "SimulatedReads",
    "MockCommunity",
    "CommunityMember",
]
