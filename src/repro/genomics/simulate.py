"""Synthetic reference genome generation.

The paper builds databases from NCBI RefSeq Release 202 (15,461
species, 74 GB) and 31 large food-related genomes, neither of which
is available offline.  This module generates collections with the
*properties that matter* for the classifier:

- a phylogeny-shaped similarity structure: species within a genus
  share a mutated common ancestor, so k-mer sharing is high within a
  genus and low across genera (this is what makes genus-level
  classification easier than species-level, as in Table 6);
- skewed k-mer multiplicity: conserved regions are copied between
  related genomes, producing the "few k-mers occur many times"
  distribution that motivates the multi-bucket hash table;
- AFS-style genomes: much longer sequences split into hundreds of
  scaffolds, stressing the many-targets-per-genome path.

All randomness flows through an explicit Generator so workloads are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genomics.alphabet import AMBIG, decode_sequence
from repro.util.rng import derive_rng

__all__ = ["SimulatedGenome", "GenomeSimulator"]


@dataclass
class SimulatedGenome:
    """A simulated reference genome.

    Attributes
    ----------
    name: human-readable organism name (unique per genome).
    accession: identifier used to link sequences to taxa.
    scaffolds: list of encoded sequences (uint8 code arrays).  Most
        genomes have a single scaffold; AFS-style genomes have many.
    genus: index of the genus this genome belongs to.
    species: index of the species within the collection.
    """

    name: str
    accession: str
    scaffolds: list[np.ndarray] = field(default_factory=list)
    genus: int = 0
    species: int = 0

    @property
    def length(self) -> int:
        return int(sum(s.size for s in self.scaffolds))

    def to_fasta_records(self) -> list[tuple[str, str]]:
        """(header, sequence) pairs, one per scaffold.

        Scaffold headers share the genome accession with a ``.N``
        suffix so the taxonomy mapping can resolve every scaffold to
        the same taxon, as NCBI assembly records do.
        """
        if len(self.scaffolds) == 1:
            return [(f"{self.accession} {self.name}", decode_sequence(self.scaffolds[0]))]
        return [
            (f"{self.accession}.{i + 1} {self.name} scaffold {i + 1}",
             decode_sequence(s))
            for i, s in enumerate(self.scaffolds)
        ]


def _random_sequence(rng: np.random.Generator, length: int, gc: float) -> np.ndarray:
    """Random code array with the requested GC content."""
    p_gc = gc / 2.0
    p_at = (1.0 - gc) / 2.0
    return rng.choice(
        np.arange(4, dtype=np.uint8), size=length, p=[p_at, p_gc, p_gc, p_at]
    ).astype(np.uint8)


def _mutate(
    rng: np.random.Generator,
    codes: np.ndarray,
    substitution_rate: float,
    indel_rate: float = 0.0,
) -> np.ndarray:
    """Apply substitutions (and optionally short indels) to a sequence.

    Substitutions always change the base (shift by 1..3 mod 4) so the
    requested rate is the realized divergence.  Indels are single-base
    insertions/deletions applied at a much lower rate; they shift the
    k-mer frame, which is the property that matters downstream.
    """
    out = codes.copy()
    n = out.size
    if substitution_rate > 0.0 and n:
        hits = np.flatnonzero(rng.random(n) < substitution_rate)
        if hits.size:
            shift = rng.integers(1, 4, size=hits.size, dtype=np.uint8)
            valid = out[hits] != AMBIG
            out[hits[valid]] = (out[hits[valid]] + shift[valid]) % np.uint8(4)
    if indel_rate > 0.0 and n:
        dels = rng.random(n) < (indel_rate / 2.0)
        out = out[~dels]
        ins_sites = np.flatnonzero(rng.random(out.size) < (indel_rate / 2.0))
        if ins_sites.size:
            ins_bases = rng.integers(0, 4, size=ins_sites.size, dtype=np.uint8)
            out = np.insert(out, ins_sites, ins_bases)
    return out


def _inject_ambiguous_runs(
    rng: np.random.Generator, codes: np.ndarray, run_rate: float, run_len: int
) -> np.ndarray:
    """Overwrite random stretches with AMBIG, emulating N-runs in drafts."""
    out = codes.copy()
    n = out.size
    n_runs = int(rng.poisson(run_rate * n)) if n else 0
    for _ in range(n_runs):
        start = int(rng.integers(0, max(1, n - run_len)))
        out[start : start + run_len] = AMBIG
    return out


@dataclass
class GenomeSimulator:
    """Generates genome collections with genus/species structure.

    Parameters mirror the knobs the experiments need; see
    :meth:`simulate_collection` for the main entry point.
    """

    seed: int = 7
    gc_content: float = 0.45
    genus_divergence: float = 0.12
    species_divergence: float = 0.03
    indel_rate: float = 0.0005
    ambiguous_run_rate: float = 2e-6
    ambiguous_run_length: int = 30

    def simulate_collection(
        self,
        n_genera: int,
        species_per_genus: int,
        genome_length: int,
        length_jitter: float = 0.1,
        name_prefix: str = "SYN",
    ) -> list[SimulatedGenome]:
        """Simulate ``n_genera * species_per_genus`` genomes.

        Each genus gets an independent ancestor; species mutate from
        it at ``species_divergence`` after the ancestor itself diverged
        ``genus_divergence`` from nothing (i.e., genera are unrelated).
        """
        genomes: list[SimulatedGenome] = []
        species_idx = 0
        for g in range(n_genera):
            rng = derive_rng(self.seed, "genus", name_prefix, g)
            length = int(genome_length * (1.0 + length_jitter * (rng.random() - 0.5)))
            ancestor = _random_sequence(rng, length, self.gc_content)
            for s in range(species_per_genus):
                srng = derive_rng(self.seed, "species", name_prefix, g, s)
                codes = _mutate(
                    srng, ancestor, self.species_divergence, self.indel_rate
                )
                codes = _inject_ambiguous_runs(
                    srng, codes, self.ambiguous_run_rate, self.ambiguous_run_length
                )
                genomes.append(
                    SimulatedGenome(
                        name=f"{name_prefix} genus{g} species{s}",
                        accession=f"{name_prefix}_{g:03d}_{s:03d}",
                        scaffolds=[codes],
                        genus=g,
                        species=species_idx,
                    )
                )
                species_idx += 1
        return genomes

    def simulate_scaffolded_genome(
        self,
        total_length: int,
        n_scaffolds: int,
        name: str,
        accession: str,
        genus: int = 0,
        species: int = 0,
    ) -> SimulatedGenome:
        """One large genome split into many scaffolds (AFS-style).

        Scaffold lengths follow a lognormal split of the total, like
        real draft assemblies where a few scaffolds hold most bases.
        """
        rng = derive_rng(self.seed, "scaffolded", accession)
        weights = rng.lognormal(mean=0.0, sigma=1.0, size=n_scaffolds)
        weights /= weights.sum()
        lengths = np.maximum((weights * total_length).astype(np.int64), 200)
        scaffolds = [
            _random_sequence(derive_rng(self.seed, accession, i), int(L), self.gc_content)
            for i, L in enumerate(lengths)
        ]
        return SimulatedGenome(
            name=name,
            accession=accession,
            scaffolds=scaffolds,
            genus=genus,
            species=species,
        )
