"""Mock communities and food-matrix mixtures.

Two experiment archetypes from the paper:

- **HiSeq/MiSeq mock communities**: reads drawn from ~10 known
  bacterial species at equal abundance; used for the accuracy table
  (Table 6).  The *novelty twist* matching the paper's setup is that
  the exact strains sequenced are not necessarily in the database, so
  we optionally sample reads from a mutated copy of each database
  genome ("strain divergence").
- **KAL_D food mixture**: reads from a small set of large genomes
  (beef, mutton, pork, horse) at *known weight ratios*, against a
  database that also contains a big bacterial background; used for
  the abundance-estimation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genomics.reads import ReadProfile, ReadSimulator, SimulatedReads
from repro.genomics.simulate import SimulatedGenome, _mutate
from repro.util.rng import derive_rng

__all__ = ["CommunityMember", "MockCommunity"]


@dataclass(frozen=True)
class CommunityMember:
    """One organism in a community with its relative abundance."""

    genome_index: int
    abundance: float


@dataclass
class MockCommunity:
    """A read-generating community over a genome collection.

    ``members`` lists which genomes contribute reads and at what
    relative abundance; ``strain_divergence`` optionally mutates each
    contributing genome before reads are sampled so that reads come
    from a *strain* of the database organism instead of an exact copy
    (this is what keeps species-level sensitivity below 100% in
    realistic benchmarks).
    """

    genomes: list[SimulatedGenome]
    members: list[CommunityMember]
    seed: int = 1234
    strain_divergence: float = 0.005

    _strains: list[SimulatedGenome] = field(default_factory=list, init=False)

    def _materialize_strains(self) -> list[SimulatedGenome]:
        if self._strains:
            return self._strains
        strains: list[SimulatedGenome] = []
        for m in self.members:
            g = self.genomes[m.genome_index]
            if self.strain_divergence > 0.0:
                rng = derive_rng(self.seed, "strain", g.accession)
                scaffolds = [
                    _mutate(rng, s, self.strain_divergence) for s in g.scaffolds
                ]
            else:
                scaffolds = [s.copy() for s in g.scaffolds]
            strains.append(
                SimulatedGenome(
                    name=f"{g.name} strain",
                    accession=f"{g.accession}_strain",
                    scaffolds=scaffolds,
                    genus=g.genus,
                    species=g.species,
                )
            )
        self._strains = strains
        return strains

    def simulate_reads(self, profile: ReadProfile, n_reads: int) -> SimulatedReads:
        """Draw reads from the community at the configured abundances.

        Ground-truth target indices refer to the *database* genome the
        strain derives from, which is the correct reference for
        classification scoring.
        """
        strains = self._materialize_strains()
        weights = np.array([m.abundance for m in self.members], dtype=np.float64)
        sim = ReadSimulator(genomes=strains, seed=self.seed, weights=weights)
        reads = sim.simulate(profile, n_reads)
        # Remap truth from strain-list indices to database genome indices.
        member_targets = np.array(
            [m.genome_index for m in self.members], dtype=np.int64
        )
        reads.true_target = member_targets[reads.true_target]
        return reads

    def true_abundances(self) -> dict[int, float]:
        """Normalized genome_index -> abundance mapping (sums to 1)."""
        total = sum(m.abundance for m in self.members)
        return {m.genome_index: m.abundance / total for m in self.members}

    @classmethod
    def uniform(
        cls,
        genomes: list[SimulatedGenome],
        member_indices: list[int],
        seed: int = 1234,
        strain_divergence: float = 0.005,
    ) -> "MockCommunity":
        """Equal-abundance community over the given genome indices."""
        members = [CommunityMember(i, 1.0) for i in member_indices]
        return cls(
            genomes=genomes,
            members=members,
            seed=seed,
            strain_divergence=strain_divergence,
        )
