"""Window partitioning of reference sequences and reads.

MetaCache divides every sequence into windows of length ``w`` that
overlap by ``k - 1`` bases so that no k-mer is lost at a boundary
(Section 4.1).  The distance between window starts -- the *stride* --
is therefore ``w - k + 1``; with the paper defaults (w=127, k=16) the
stride is 112, deliberately a multiple of 4 so the GPU kernel can do
aligned 4-byte loads (Section 5.2).  We keep that constraint check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WindowLayout",
    "num_windows",
    "window_slices",
    "packed_window_slices",
]


@dataclass(frozen=True)
class WindowLayout:
    """Window geometry derived from k-mer length and window size.

    Attributes
    ----------
    k: k-mer length.
    window_size: window length ``w`` in bases.
    stride: distance between window starts, ``w - k + 1``.
    """

    k: int
    window_size: int

    def __post_init__(self) -> None:
        if self.window_size < self.k:
            raise ValueError(
                f"window_size ({self.window_size}) must be >= k ({self.k})"
            )

    @property
    def stride(self) -> int:
        return self.window_size - self.k + 1

    @property
    def stride_aligned(self) -> bool:
        """True when the stride honors the GPU 4-byte alignment rule."""
        return self.stride % 4 == 0

    def num_windows(self, seq_len: int) -> int:
        return num_windows(seq_len, self.window_size, self.stride, self.k)

    def window_slices(self, seq_len: int) -> tuple[np.ndarray, np.ndarray]:
        return window_slices(seq_len, self.window_size, self.stride, self.k)

    def covered_windows(self, read_len: int) -> int:
        """Number of consecutive reference windows a read may span.

        Determines the sliding-window size of the top-candidate kernel:
        a read of this length can produce hits in at most this many
        contiguous reference windows (plus one for straddling).
        """
        if read_len <= 0:
            return 0
        return max(1, -(-max(read_len - self.k + 1, 1) // self.stride))

    def covered_windows_batch(self, read_lens: np.ndarray) -> np.ndarray:
        """:meth:`covered_windows` over a whole batch at once (int64).

        Element-for-element identical to the scalar method -- the
        packed query path uses this instead of a per-read Python loop.
        """
        lens = np.asarray(read_lens, dtype=np.int64)
        kmers = np.maximum(lens - self.k + 1, 1)
        covered = np.maximum(1, -(-kmers // self.stride))
        return np.where(lens <= 0, 0, covered)

    def packed_window_slices(
        self, seg_lengths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return packed_window_slices(
            seg_lengths, self.window_size, self.stride, self.k
        )


def num_windows(seq_len: int, window_size: int, stride: int, k: int) -> int:
    """Number of windows needed to cover ``seq_len`` bases.

    A sequence shorter than ``k`` contains no k-mers and yields zero
    windows.  Otherwise windows start at 0, stride, 2*stride, ... and
    the last window begins at the last start that still contains a
    full k-mer.
    """
    if seq_len < k:
        return 0
    # Last admissible start: a window must contain at least one k-mer.
    last_start = seq_len - k
    return last_start // stride + 1


def window_slices(
    seq_len: int, window_size: int, stride: int, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Start and end offsets of every window of a sequence.

    Returns ``(starts, ends)``; ``ends`` are clipped to ``seq_len`` so
    the final window may be shorter than ``window_size`` (it always
    holds at least one whole k-mer).
    """
    n = num_windows(seq_len, window_size, stride, k)
    starts = np.arange(n, dtype=np.int64) * stride
    ends = np.minimum(starts + window_size, seq_len)
    return starts, ends


def packed_window_slices(
    seg_lengths: np.ndarray, window_size: int, stride: int, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`window_slices` for every segment of a packed batch at once.

    Given the lengths of all segments of a contiguous batch, returns
    ``(counts, segment_ids, starts, ends)``: ``counts[i]`` is the
    number of windows of segment ``i`` (its :func:`num_windows`), and
    the remaining three flat arrays describe every window in segment
    order -- the segment it belongs to and its start/end offsets
    *local to that segment* (ends clipped to the segment, exactly as
    :func:`window_slices` clips).  Pure array ops: the per-window axis
    is built with one ``repeat`` + one subtraction, never a Python
    loop over segments.
    """
    seg_lengths = np.asarray(seg_lengths, dtype=np.int64)
    counts = np.where(seg_lengths >= k, (seg_lengths - k) // stride + 1, 0)
    segment_ids = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    win_offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=win_offsets[1:])
    local = (
        np.arange(segment_ids.size, dtype=np.int64)
        - win_offsets[segment_ids]
    )
    starts = local * stride
    ends = np.minimum(starts + window_size, seg_lengths[segment_ids])
    return counts, segment_ids, starts, ends
