"""Nucleotide alphabet and string <-> code-array conversion.

Sequences are held as ``uint8`` code arrays: A=0, C=1, G=2, T=3 and
``AMBIG`` (255) for every other character (N, IUPAC codes, gaps).
The 2-bit code is chosen so that the complement of a base is the
bitwise NOT of its code within the field (A<->T is 0<->3, C<->G is
1<->2), which lets the k-mer kernels complement via pure bit math.

The paper's GPU kernel encodes characters with 3 bits to capture N as
a separate flag; we keep the equivalent information as the ``AMBIG``
sentinel plus validity masks computed in :mod:`repro.genomics.kmers`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "A",
    "C",
    "G",
    "T",
    "AMBIG",
    "encode_sequence",
    "decode_sequence",
    "complement_codes",
    "reverse_complement_str",
]

A = np.uint8(0)
C = np.uint8(1)
G = np.uint8(2)
T = np.uint8(3)
AMBIG = np.uint8(255)

# Byte-indexed lookup table covering upper and lower case.
_ENCODE_LUT = np.full(256, AMBIG, dtype=np.uint8)
for _ch, _code in (("A", A), ("C", C), ("G", G), ("T", T), ("U", T)):
    _ENCODE_LUT[ord(_ch)] = _code
    _ENCODE_LUT[ord(_ch.lower())] = _code

_DECODE_LUT = np.full(256, ord("N"), dtype=np.uint8)
_DECODE_LUT[0] = ord("A")
_DECODE_LUT[1] = ord("C")
_DECODE_LUT[2] = ord("G")
_DECODE_LUT[3] = ord("T")

_COMPLEMENT_LUT = np.full(256, AMBIG, dtype=np.uint8)
_COMPLEMENT_LUT[0:4] = [3, 2, 1, 0]


def encode_sequence(seq: str | bytes | np.ndarray) -> np.ndarray:
    """Convert a nucleotide string to a uint8 code array.

    Accepts ``str``, ``bytes`` or an existing uint8 code array (which
    is passed through unchanged, making the function idempotent so
    call sites can accept either representation).
    """
    if isinstance(seq, np.ndarray):
        if seq.dtype != np.uint8:
            raise TypeError(f"code arrays must be uint8, got {seq.dtype}")
        return seq
    if isinstance(seq, str):
        seq = seq.encode("ascii")
    raw = np.frombuffer(seq, dtype=np.uint8)
    return _ENCODE_LUT[raw]


def decode_sequence(codes: np.ndarray) -> str:
    """Convert a code array back to an upper-case string (AMBIG -> N)."""
    return _DECODE_LUT[np.asarray(codes, dtype=np.uint8)].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Per-base complement of a code array (AMBIG stays AMBIG)."""
    return _COMPLEMENT_LUT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement_str(seq: str) -> str:
    """Reverse complement of a nucleotide string (reference helper)."""
    return decode_sequence(complement_codes(encode_sequence(seq))[::-1])
