"""Minimal, robust FASTA reading and writing.

The build pipeline's producer threads parse reference genome files
into (header, sequence) pairs (Section 4.1); this module is that
parser.  It is intentionally streaming-friendly: :func:`read_fasta`
is a generator so multi-gigabyte files never need to fit in memory
at once (batching happens in :mod:`repro.pipeline`).
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import InvalidReadError

__all__ = ["FastaRecord", "read_fasta", "write_fasta"]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: full header line (sans '>') and sequence string."""

    header: str
    sequence: str

    @property
    def accession(self) -> str:
        """First whitespace-delimited token of the header.

        MetaCache extracts the genomic identifier from the header to
        link the target to the taxonomy (Section 4.1); we use the
        leading token as that identifier.
        """
        return self.header.split()[0] if self.header.split() else ""


def read_fasta(source: str | os.PathLike | io.TextIOBase) -> Iterator[FastaRecord]:
    """Yield records from a FASTA file path or open text handle.

    Tolerates leading blank lines, Windows line endings and missing
    trailing newline.  Raises
    :class:`repro.errors.InvalidReadError` (a ``ValueError``
    subclass, so old ``except ValueError`` call sites keep working)
    on sequence data before the first header.
    """
    own = False
    if isinstance(source, (str, os.PathLike)):
        handle: io.TextIOBase = open(source, "r", encoding="ascii")
        own = True
    else:
        handle = source
    try:
        header: str | None = None
        chunks: list[str] = []
        for line in handle:
            line = line.rstrip("\r\n")
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield FastaRecord(header, "".join(chunks))
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise InvalidReadError(
                        "FASTA sequence data before first header"
                    )
                chunks.append(line.strip())
        if header is not None:
            yield FastaRecord(header, "".join(chunks))
    finally:
        if own:
            handle.close()


def write_fasta(
    records: Iterable[FastaRecord | tuple[str, str]],
    dest: str | os.PathLike | io.TextIOBase,
    line_width: int = 80,
) -> int:
    """Write records to a FASTA file; returns the number written.

    Accepts either :class:`FastaRecord` objects or plain
    ``(header, sequence)`` tuples.
    """
    own = False
    if isinstance(dest, (str, os.PathLike)):
        handle: io.TextIOBase = open(dest, "w", encoding="ascii")
        own = True
    else:
        handle = dest
    count = 0
    try:
        for rec in records:
            if isinstance(rec, tuple):
                header, seq = rec
            else:
                header, seq = rec.header, rec.sequence
            handle.write(f">{header}\n")
            for i in range(0, len(seq), line_width):
                handle.write(seq[i : i + line_width])
                handle.write("\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count
