"""Format-sniffing sequence input: FASTA or FASTQ, plain or gzip'd.

The CLI, the :mod:`repro.api` facade, and the classification server
all accept "some reads" without asking the caller to name the format.
This module owns that sniffing: the container (gzip magic bytes) and
the record format (``>`` vs ``@`` sigil) are detected from the
content itself, empty input yields zero reads, and *any* malformed
input -- wrong sigil, truncated gzip member, non-ASCII bytes,
truncated final FASTQ record -- raises
:class:`repro.errors.InvalidReadError`, never a bare ``EOFError`` /
``UnicodeDecodeError`` / ``zlib.error``.  Servers and pipelines can
therefore wrap ingest in a single ``except MetaCacheError``.

Two entry points share the machinery:

- :func:`iter_sequence_records` streams from a file path (the query
  pipeline's producer uses this; multi-gigabyte files never need to
  fit in memory);
- :func:`iter_sequence_records_bytes` parses an in-memory buffer
  (the server's ``POST /classify`` request bodies).
"""

from __future__ import annotations

import gzip
import io
import os
import zlib
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import InvalidReadError
from repro.genomics.alphabet import encode_sequence
from repro.genomics.fasta import read_fasta
from repro.genomics.fastq import read_fastq

__all__ = [
    "open_sequence_file",
    "iter_sequence_records",
    "iter_sequence_records_bytes",
    "read_sequences",
]

_GZIP_MAGIC = b"\x1f\x8b"


@contextmanager
def _translate_parse_errors(name: str):
    """Turn raw parser/decompressor failures into ``InvalidReadError``.

    The FASTA/FASTQ parsers already raise the typed error; this guard
    catches what they cannot see -- a gzip member cut short
    (``EOFError``), corrupt deflate data (``zlib.error`` /
    ``gzip.BadGzipFile``), bytes outside ASCII
    (``UnicodeDecodeError``) -- and re-raises each as
    ``InvalidReadError`` naming the input.  ``FileNotFoundError`` and
    other genuine I/O errors pass through untouched: a missing file
    is an environment problem, not malformed read data.
    """
    try:
        yield
    except InvalidReadError:
        raise
    except (EOFError, gzip.BadGzipFile, zlib.error) as exc:
        raise InvalidReadError(
            f"{name}: corrupt or truncated gzip data ({exc})"
        ) from exc
    except UnicodeDecodeError as exc:
        raise InvalidReadError(
            f"{name}: not a text sequence file ({exc})"
        ) from exc
    except ValueError as exc:
        raise InvalidReadError(f"{name}: {exc}") from exc


def open_sequence_file(path: str | os.PathLike) -> io.TextIOBase:
    """Open a (possibly gzip'd) text file for reading.

    Compression is detected from the magic bytes, not the file name,
    so ``reads.fastq`` and ``reads.fastq.gz`` both just work.
    """
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


def _sniffed_records(
    handle: io.TextIOBase, name: str
) -> Iterator[tuple[str, str]]:
    """Dispatch an open text handle to the FASTA or FASTQ parser.

    The format is sniffed from the first non-blank character; empty
    input yields nothing.  Shared by the file and in-memory entry
    points so their accepted grammar cannot diverge.
    """
    # Skip blank lines only: the record parsers tolerate those too,
    # so sniff and parse agree.  Any other leading whitespace (a
    # line of spaces) would be rejected downstream with a confusing
    # message, so call it out as not-a-sequence-file right here.
    first = handle.read(1)
    while first in ("\n", "\r"):
        first = handle.read(1)
    handle.seek(0)
    if first == "":
        return
    if first == ">":
        for fa in read_fasta(handle):
            yield fa.header, fa.sequence
    elif first == "@":
        for fq in read_fastq(handle):
            yield fq.header, fq.sequence
    else:
        raise InvalidReadError(
            f"{name}: neither FASTA nor FASTQ (starts with {first!r})"
        )


def iter_sequence_records(path: str | os.PathLike) -> Iterator[tuple[str, str]]:
    """Lazily yield ``(header, sequence)`` pairs from a FASTA/FASTQ file.

    The format is sniffed from the first non-whitespace character of
    the (decompressed) content; an empty file yields nothing.  This is
    the streaming primitive -- multi-gigabyte read files never need to
    fit in memory (the API's ``classify_iter`` batches on top of it).
    Malformed content of any kind raises
    :class:`repro.errors.InvalidReadError` naming the path; a missing
    file still raises ``FileNotFoundError``.
    """
    with _translate_parse_errors(str(path)):
        handle = open_sequence_file(path)
        try:
            yield from _sniffed_records(handle, str(path))
        finally:
            handle.close()


def _bounded_gunzip(data: bytes, limit: int | None, name: str) -> bytes:
    """Decompress gzip bytes, refusing to inflate past ``limit``.

    Decompression happens in chunks through ``zlib.decompressobj`` so
    a gzip bomb (a small compressed payload hiding a huge plaintext)
    is rejected after at most ``limit`` bytes of output instead of
    materializing gigabytes from one request.  Servers pass their
    body bound here; ``limit=None`` keeps the trusting behaviour for
    local callers.
    """
    if limit is None:
        return gzip.decompress(data)
    chunks: list[bytes] = []
    total = 0
    view = memoryview(data)
    n = len(data)
    offset = 0
    max_feed = 65536
    # A gzip file is one or more back-to-back members (bgzip and
    # bcl2fastq emit many; `cat a.fq.gz b.fq.gz` too), so decompress
    # member after member -- matching gzip.decompress -- carrying the
    # running total against the limit across all of them.  Input is
    # fed in windows tracked by offset (handing the whole remaining
    # buffer to the decompressor would copy it back out via
    # unused_data at every member boundary), and each member's first
    # window starts small and grows geometrically, so a flood of tiny
    # members costs O(member size) each rather than a full window of
    # copying per member.
    while offset < n:
        # wbits=47 = zlib's "gzip container, max window" mode
        stream = zlib.decompressobj(wbits=47)
        buf: bytes | memoryview = b""
        feed = 512
        while not stream.eof:
            if not len(buf):
                if offset >= n:
                    break  # more input needed but none left: truncated
                buf = view[offset : offset + feed]
                offset += len(buf)
                feed = min(feed * 2, max_feed)
            chunk = stream.decompress(buf, max(1, limit - total + 1))
            buf = stream.unconsumed_tail
            total += len(chunk)
            if total > limit:
                raise InvalidReadError(
                    f"{name}: gzip payload inflates past the "
                    f"{limit}-byte bound"
                )
            chunks.append(chunk)
        if not stream.eof:
            raise InvalidReadError(
                f"{name}: corrupt or truncated gzip data "
                "(stream ended before the end-of-stream marker)"
            )
        offset -= len(stream.unused_data)  # unfed + unused = data[offset:]
        # skip zero padding between and after members (the gzip
        # module's semantics); the single-byte probe keeps the
        # unpadded common case copy-free
        while offset < n and data[offset] == 0:
            window = bytes(view[offset : offset + max_feed])
            stripped = window.lstrip(b"\x00")
            offset += len(window) - len(stripped)
            if stripped:
                break
        if offset < n and bytes(view[offset : offset + 2]) != _GZIP_MAGIC:
            raise InvalidReadError(
                f"{name}: trailing garbage after gzip end-of-stream marker"
            )
    return b"".join(chunks)


def iter_sequence_records_bytes(
    data: bytes,
    *,
    name: str = "<request body>",
    max_decompressed_bytes: int | None = None,
) -> Iterator[tuple[str, str]]:
    """Lazily yield ``(header, sequence)`` pairs from an in-memory buffer.

    The server's ingest path: a ``POST /classify`` body arrives as
    bytes -- FASTA or FASTQ, plain or a gzip'd payload (sniffed by
    magic bytes, exactly like the file path).  Empty input yields
    nothing; malformed input raises
    :class:`repro.errors.InvalidReadError` carrying ``name``.

    ``max_decompressed_bytes`` bounds how far a gzip payload may
    inflate (untrusted input: a request-size limit alone does not
    bound the plaintext of a compressed body); exceeding it raises
    :class:`repro.errors.InvalidReadError`.
    """
    with _translate_parse_errors(name):
        if data[:2] == _GZIP_MAGIC:
            data = _bounded_gunzip(data, max_decompressed_bytes, name)
        handle = io.StringIO(data.decode("ascii"))
        yield from _sniffed_records(handle, name)


def read_sequences(path: str | os.PathLike) -> tuple[list[str], list[np.ndarray]]:
    """Load a whole FASTA/FASTQ file as (headers, encoded sequences).

    Eager counterpart of :func:`iter_sequence_records`; the former
    ``repro.cli._read_sequences`` with gzip support added.
    """
    headers: list[str] = []
    seqs: list[np.ndarray] = []
    for header, seq in iter_sequence_records(path):
        headers.append(header)
        seqs.append(encode_sequence(seq))
    return headers, seqs
