"""Format-sniffing sequence input: FASTA or FASTQ, plain or gzip'd.

The CLI and the :mod:`repro.api` facade both accept "a file of reads"
without asking the caller to name the format.  This module owns that
sniffing: the container (gzip magic bytes) and the record format
(``>`` vs ``@`` sigil) are detected from the file content, empty
files yield zero reads, and anything else raises
:class:`repro.errors.InvalidReadError`.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Iterator

import numpy as np

from repro.errors import InvalidReadError
from repro.genomics.alphabet import encode_sequence
from repro.genomics.fasta import read_fasta
from repro.genomics.fastq import read_fastq

__all__ = ["open_sequence_file", "iter_sequence_records", "read_sequences"]

_GZIP_MAGIC = b"\x1f\x8b"


def open_sequence_file(path: str | os.PathLike) -> io.TextIOBase:
    """Open a (possibly gzip'd) text file for reading.

    Compression is detected from the magic bytes, not the file name,
    so ``reads.fastq`` and ``reads.fastq.gz`` both just work.
    """
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


def iter_sequence_records(path: str | os.PathLike) -> Iterator[tuple[str, str]]:
    """Lazily yield ``(header, sequence)`` pairs from a FASTA/FASTQ file.

    The format is sniffed from the first non-whitespace character of
    the (decompressed) content; an empty file yields nothing.  This is
    the streaming primitive -- multi-gigabyte read files never need to
    fit in memory (the API's ``classify_iter`` batches on top of it).
    """
    handle = open_sequence_file(path)
    try:
        # Skip blank lines only: the record parsers tolerate those too,
        # so sniff and parse agree.  Any other leading whitespace (a
        # line of spaces) would be rejected downstream with a confusing
        # message, so call it out as not-a-sequence-file right here.
        first = handle.read(1)
        while first in ("\n", "\r"):
            first = handle.read(1)
        handle.seek(0)
        if first == "":
            return
        if first == ">":
            for fa in read_fasta(handle):
                yield fa.header, fa.sequence
        elif first == "@":
            for fq in read_fastq(handle):
                yield fq.header, fq.sequence
        else:
            raise InvalidReadError(
                f"{path}: neither FASTA nor FASTQ (starts with {first!r})"
            )
    finally:
        handle.close()


def read_sequences(path: str | os.PathLike) -> tuple[list[str], list[np.ndarray]]:
    """Load a whole FASTA/FASTQ file as (headers, encoded sequences).

    Eager counterpart of :func:`iter_sequence_records`; the former
    ``repro.cli._read_sequences`` with gzip support added.
    """
    headers: list[str] = []
    seqs: list[np.ndarray] = []
    for header, seq in iter_sequence_records(path):
        headers.append(header)
        seqs.append(encode_sequence(seq))
    return headers, seqs
