"""Illumina-like read simulation with ground truth.

Reproduces the regimes of the paper's three query datasets (Table 2):

- **HiSeq-like**: short single-end reads, ~92 bp average, <=101 bp.
- **MiSeq-like**: longer single-end reads, ~157 bp average, <=251 bp
  (longer than MetaCache's 127 bp window, so reads split into two
  windows -- the case Section 6.2 calls out as slower).
- **KAL_D-like**: 101 bp paired-end reads from a mixture.

Each simulated read records the genome (target index), species and
genus it was drawn from, giving exact per-read ground truth for the
precision/sensitivity computations of Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genomics.alphabet import AMBIG
from repro.genomics.simulate import SimulatedGenome
from repro.util.rng import derive_rng

__all__ = ["ReadProfile", "SimulatedReads", "ReadSimulator", "HISEQ", "MISEQ", "KAL_D"]


@dataclass(frozen=True)
class ReadProfile:
    """Sequencing profile: length distribution, error rate, pairing."""

    name: str
    mean_length: int
    max_length: int
    min_length: int = 19
    error_rate: float = 0.004
    paired: bool = False
    fragment_mean: int = 350
    fragment_sd: int = 40

    def sample_lengths(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Sample read lengths.

        Most Illumina reads come out at full machine length with a
        small trimmed tail, so we draw from a truncated geometric-ish
        mixture: ~85% at max length, the rest uniform down to min.
        When mean == max every read has exactly that length (KAL_D).
        """
        if self.mean_length >= self.max_length:
            return np.full(n, self.max_length, dtype=np.int64)
        full_frac = np.clip(
            (self.mean_length - (self.min_length + self.max_length) / 2)
            / (self.max_length - (self.min_length + self.max_length) / 2),
            0.05,
            0.98,
        )
        full = rng.random(n) < full_frac
        lengths = rng.integers(self.min_length, self.max_length + 1, size=n)
        lengths[full] = self.max_length
        return lengths.astype(np.int64)


# Profiles matching Table 2's datasets.
HISEQ = ReadProfile("HiSeq", mean_length=92, max_length=101, min_length=19)
MISEQ = ReadProfile("MiSeq", mean_length=157, max_length=251, min_length=19)
KAL_D = ReadProfile(
    "KAL_D", mean_length=101, max_length=101, min_length=101,
    error_rate=0.004, paired=True,
)


@dataclass
class SimulatedReads:
    """A batch of simulated reads with per-read ground truth.

    ``sequences`` holds encoded code arrays; for paired reads,
    ``mates`` holds the second mate (same order) and both mates share
    one truth entry -- MetaCache classifies the pair jointly.
    """

    profile: ReadProfile
    sequences: list[np.ndarray]
    mates: list[np.ndarray] | None
    true_target: np.ndarray  # index into the genome collection
    true_species: np.ndarray
    true_genus: np.ndarray

    def __len__(self) -> int:
        return len(self.sequences)

    @property
    def paired(self) -> bool:
        return self.mates is not None

    def length_stats(self) -> tuple[int, int, float]:
        """(min, max, mean) over all mates, like Table 2 reports."""
        lens = [s.size for s in self.sequences]
        if self.mates is not None:
            lens += [m.size for m in self.mates]
        arr = np.array(lens)
        return int(arr.min()), int(arr.max()), float(arr.mean())


def _apply_errors(
    rng: np.random.Generator, codes: np.ndarray, error_rate: float
) -> np.ndarray:
    out = codes.copy()
    if error_rate <= 0.0 or out.size == 0:
        return out
    hits = np.flatnonzero(rng.random(out.size) < error_rate)
    if hits.size:
        shift = rng.integers(1, 4, size=hits.size, dtype=np.uint8)
        ok = out[hits] != AMBIG
        out[hits[ok]] = (out[hits[ok]] + shift[ok]) % np.uint8(4)
    return out


def _revcomp_codes(codes: np.ndarray) -> np.ndarray:
    comp = np.where(codes == AMBIG, codes, np.uint8(3) - codes)
    return comp[::-1].copy()


@dataclass
class ReadSimulator:
    """Samples reads from a genome collection.

    ``weights`` control per-genome abundance (uniform by default);
    positions are uniform along the concatenated scaffolds of the
    chosen genome, and strands are random.
    """

    genomes: list[SimulatedGenome]
    seed: int = 99
    weights: np.ndarray | None = None

    def _genome_sampler(self, rng: np.random.Generator, n: int) -> np.ndarray:
        k = len(self.genomes)
        if self.weights is None:
            return rng.integers(0, k, size=n)
        w = np.asarray(self.weights, dtype=np.float64)
        w = w / w.sum()
        return rng.choice(k, size=n, p=w)

    def simulate(self, profile: ReadProfile, n_reads: int) -> SimulatedReads:
        """Simulate ``n_reads`` reads (or read pairs) under ``profile``."""
        rng = derive_rng(self.seed, "reads", profile.name, n_reads)
        choices = self._genome_sampler(rng, n_reads)
        lengths = profile.sample_lengths(rng, n_reads)
        seqs: list[np.ndarray] = []
        mates: list[np.ndarray] | None = [] if profile.paired else None
        t_target = np.empty(n_reads, dtype=np.int64)
        t_species = np.empty(n_reads, dtype=np.int64)
        t_genus = np.empty(n_reads, dtype=np.int64)
        for i in range(n_reads):
            g = self.genomes[int(choices[i])]
            scaffold = g.scaffolds[int(rng.integers(0, len(g.scaffolds)))]
            L = int(min(lengths[i], scaffold.size))
            if profile.paired:
                frag = int(
                    np.clip(
                        rng.normal(profile.fragment_mean, profile.fragment_sd),
                        L,
                        max(L, scaffold.size),
                    )
                )
                start = int(rng.integers(0, max(1, scaffold.size - frag + 1)))
                fragment = scaffold[start : start + frag]
                m1 = fragment[:L]
                m2 = _revcomp_codes(fragment[-L:])
                if rng.random() < 0.5:
                    m1, m2 = _revcomp_codes(fragment[-L:]), fragment[:L].copy()
                seqs.append(_apply_errors(rng, np.ascontiguousarray(m1), profile.error_rate))
                mates.append(_apply_errors(rng, np.ascontiguousarray(m2), profile.error_rate))  # type: ignore[union-attr]
            else:
                start = int(rng.integers(0, max(1, scaffold.size - L + 1)))
                read = scaffold[start : start + L]
                if rng.random() < 0.5:
                    read = _revcomp_codes(read)
                seqs.append(_apply_errors(rng, np.ascontiguousarray(read), profile.error_rate))
            t_target[i] = choices[i]
            t_species[i] = g.species
            t_genus[i] = g.genus
        return SimulatedReads(
            profile=profile,
            sequences=seqs,
            mates=mates,
            true_target=t_target,
            true_species=t_species,
            true_genus=t_genus,
        )
