"""The shard router: one logical classification service over N x R processes.

:class:`ShardRouter` owns one :class:`~repro.shard.replica.ReplicaSet`
per shard of a :class:`~repro.shard.plan.ShardPlan`.  A query fans one
:class:`~repro.shard.messages.ShardTask` out to the least-loaded live
replica of every shard, collects the N per-shard candidate runs from
the replicas' per-slot result queues (multiplexed with
:func:`multiprocessing.connection.wait`, so the wait is event-driven,
not a sleep poll), and merges them (ascending shard id) with
:func:`~repro.core.merge.merge_partition_runs` -- candidate targets
are unique across partitions, so the merged top-``m`` is byte-identical
to a single-process query over the whole database regardless of shard
count or arrival order.

Failure handling during the wait loop:

- a replica *process death* (any exit code) is detected by exit-code
  polling; if the dead replica held this batch's dispatch for a shard
  that has not answered yet, the task is re-dispatched to a sibling
  replica (*failover*) and the death is accounted for respawn with
  bounded exponential backoff.  The request never fails for a
  single-replica crash; the shard merely reports *degraded* until the
  respawn handshake completes.
- a replica answering with an *exception* (``"error"`` message) for
  the current batch re-raises as
  :class:`~repro.errors.PipelineError` with the replica traceback and
  is **not** failed over: the pipeline is deterministic, so a sibling
  would fail identically.  The router itself stays serviceable --
  results are batch-id-tagged, so any late duplicates are discarded.
- ``batch_timeout`` (optional) kills a replica that sits on a batch
  too long, which then follows the death path above.
- only when a shard's last replica is dead *and* its respawn budget
  is exhausted does the query raise
  :class:`~repro.errors.ShardFailedError`.

Queues are never shared between replicas and never reused across
process generations: SIGKILL can take a process down while it holds a
queue's internal pipe lock, and a shared queue would then wedge every
sibling's ``put`` forever.  Each slot owns its queues, a respawn gets
fresh ones, and the router refuses to read the result queue of a
signal-killed writer (it may hold a truncated message) -- see
:class:`~repro.shard.replica.ReplicaSlot`.

Teardown mirrors :class:`~repro.parallel.engine.ParallelClassifier`:
an idempotent module-level shutdown shared by :meth:`ShardRouter.close`
and a ``weakref.finalize`` safety net, escalating join -> terminate ->
kill via :func:`~repro.parallel.engine.reap_processes`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import weakref
from multiprocessing import connection as mp_connection
from typing import Any

from repro.core.config import ClassificationParams
from repro.core.database import FileBackedDatabaseHandle
from repro.core.merge import merge_partition_runs
from repro.core.query import QueryResult
from repro.errors import PipelineError, ReloadError, WorkerCrashError
from repro.parallel.engine import reap_processes
from repro.pipeline.packed import PackedReads
from repro.shard.messages import ShardResult, ShardTask
from repro.shard.plan import ShardPlan
from repro.shard.replica import ReplicaSet, ReplicaSlot

__all__ = ["ShardRouter"]

_POLL_SECONDS = 0.1


def _shutdown_router(state: dict, sets: list) -> None:
    """Idempotent router teardown shared by close() and the GC finalizer.

    Politely sentinels every replica's task queue, escalates to
    terminate/kill on stragglers, then releases each slot's current
    queues (previous generations' queues were already dropped at
    respawn).  Never raises: teardown must succeed even mid-crash.
    """
    if state["closed"]:
        return
    state["closed"] = True
    procs = []
    queues = []
    for rset in sets:
        for slot in rset.slots:
            if slot.tasks is not None:
                try:
                    slot.tasks.put(None)
                except (OSError, ValueError):  # queue already broken
                    pass
                queues.append(slot.tasks)
            if slot.results is not None:
                queues.append(slot.results)
            if slot.process is not None:
                procs.append(slot.process)
    reap_processes(procs)
    for q in queues:
        try:
            q.cancel_join_thread()
            q.close()
        except (OSError, ValueError):  # pragma: no cover
            pass


class ShardRouter:
    """Fan-out / merge front-end over N shards x R replicas.

    Parameters
    ----------
    plan:
        partition-to-shard assignment over a saved format-v2
        directory (see :meth:`ShardPlan.from_directory`).
    replicas:
        replica processes per shard (>= 1).
    start_timeout:
        seconds to wait for every replica's mmap-attach handshake.
    batch_timeout:
        optional per-batch ceiling in seconds; a replica exceeding it
        is killed and its batch failed over to a sibling.  ``None``
        (the default) trusts replicas to answer eventually.
    respawn_backoff / respawn_backoff_cap / max_respawns:
        crash-loop damping, per replica slot (see
        :class:`~repro.shard.replica.ReplicaSet`).

    Raises
    ------
    WorkerCrashError
        when a replica dies or fails to attach during startup.
    """

    def __init__(
        self,
        plan: ShardPlan,
        *,
        replicas: int = 1,
        start_timeout: float = 120.0,
        batch_timeout: float | None = None,
        respawn_backoff: float = 0.5,
        respawn_backoff_cap: float = 5.0,
        max_respawns: int = 3,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.plan = plan
        self.replicas = replicas
        self.batch_timeout = batch_timeout
        self._handle = FileBackedDatabaseHandle(plan.directory)
        self._state = {"closed": False}
        self._lock = threading.Lock()
        self._batch_counter = 0
        self.batches = 0
        ctx = mp.get_context("spawn")
        self._sets = [
            ReplicaSet(
                a.shard_id,
                a.partition_ids,
                self._handle,
                ctx,
                replicas=replicas,
                respawn_backoff=respawn_backoff,
                respawn_backoff_cap=respawn_backoff_cap,
                max_respawns=max_respawns,
            )
            for a in plan.assignments
        ]
        self._finalizer = weakref.finalize(
            self, _shutdown_router, self._state, self._sets
        )
        try:
            for rset in self._sets:
                rset.start()
            self._await_ready(start_timeout)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- startup

    def _await_ready(self, timeout: float) -> None:
        """Wait for every replica's mmap-attach handshake (or fail fast)."""
        expected = {(s.shard_id, slot.replica_id) for s in self._sets for slot in s.slots}
        ready: set[tuple[int, int]] = set()
        deadline = time.monotonic() + timeout
        while len(ready) < len(expected):
            got = False
            for msg in self._take_messages():
                got = True
                if msg[0] == "ready":
                    _, sid, rid = msg
                    ready.add((sid, rid))
                    self._sets[sid].on_ready(rid)
                elif msg[0] == "init_error":
                    _, sid, rid, message, tb = msg
                    self._sets[sid].last_error = message
                    raise WorkerCrashError(
                        f"shard {sid} replica {rid} failed to map the "
                        f"database: {message}\n{tb}"
                    )
            for rset in self._sets:
                for slot in rset.slots:
                    if slot.death_unnoted:
                        rset.note_death(slot, time.monotonic())
                        raise WorkerCrashError(
                            f"shard {rset.shard_id} replica {slot.replica_id} "
                            f"died during startup "
                            f"(exit code {slot.process.exitcode})"
                            + (
                                f": {rset.last_error}"
                                if rset.last_error
                                else ""
                            )
                        )
            if not got:
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        f"only {len(ready)}/{len(expected)} shard replicas "
                        f"ready after {timeout:.0f}s"
                    )
                self._wait_for_messages(_POLL_SECONDS)

    # ----------------------------------------------------- result collection

    def _take_messages(self) -> list[tuple]:
        """Drain every safely-readable slot result queue (non-blocking).

        A queue is skipped while its writer's death is unaccounted for
        a signal (see :attr:`ReplicaSlot.readable`): a SIGKILLed
        replica may have left a truncated message in the pipe, and a
        blocking ``recv`` on it would never return.
        """
        msgs: list[tuple] = []
        for rset in self._sets:
            for slot in rset.slots:
                if slot.results is None or not slot.readable:
                    continue
                while True:
                    try:
                        msgs.append(slot.results.get_nowait())
                    except (queue_mod.Empty, OSError, ValueError):
                        break
        return msgs

    def _wait_for_messages(self, timeout: float) -> None:
        """Block until some slot's result pipe is readable (or timeout)."""
        conns = [
            slot.results._reader
            for rset in self._sets
            for slot in rset.slots
            if slot.results is not None and slot.readable
        ]
        if not conns:
            time.sleep(timeout)
            return
        try:
            mp_connection.wait(conns, timeout=timeout)
        except OSError:  # a queue was torn down mid-wait
            time.sleep(timeout)

    # ------------------------------------------------------------ main loop

    def query(
        self, packed: PackedReads, *, params: ClassificationParams
    ) -> QueryResult:
        """Classify one packed batch across all shards; merged result.

        Byte-identical to ``query_database`` over the whole database
        with the same ``params``.  Thread-safe via an internal lock --
        batches are serviced one at a time (each batch already
        parallelizes across every shard), which is the access pattern
        of the server's micro-batcher.

        Raises
        ------
        PipelineError
            the batch raised inside a replica (original traceback in
            the message); not retried, the failure is deterministic.
        ShardFailedError
            a shard has no live replica left and its respawn budget
            is exhausted.
        """
        with self._lock:
            if self._state["closed"]:
                raise RuntimeError("ShardRouter is closed")
            self._batch_counter += 1
            bid = self._batch_counter
            task = ShardTask(
                batch_id=bid, packed=packed, params=params
            )
            pending: dict[int, ReplicaSlot] = {}
            started: dict[int, float] = {}
            for rset in self._sets:
                pending[rset.shard_id] = rset.dispatch(task)
                started[rset.shard_id] = time.monotonic()
            outputs: dict[int, ShardResult] = {}
            while len(outputs) < len(self._sets):
                self._sweep(task, pending, started, outputs)
                msgs = self._take_messages()
                for msg in msgs:
                    self._handle_message(msg, bid, outputs)
                if not msgs:
                    self._wait_for_messages(_POLL_SECONDS)
            self.batches += 1
            return self._merge(outputs, packed)

    def _sweep(
        self,
        task: ShardTask,
        pending: dict[int, ReplicaSlot],
        started: dict[int, float],
        outputs: dict[int, ShardResult],
    ) -> None:
        """Detect dead/stuck replicas; fail the batch over; run respawns."""
        now = time.monotonic()
        for rset in self._sets:
            sid = rset.shard_id
            slot = pending[sid]
            waiting = sid not in outputs
            if (
                waiting
                and self.batch_timeout is not None
                and slot.alive
                and now - started[sid] > self.batch_timeout
            ):
                # a stuck replica is indistinguishable from a wedged mmap
                # read -- reclaim the batch by making the death real
                slot.process.kill()
                slot.process.join(timeout=5.0)
            for s in rset.slots:
                rset.note_death(s, now)
            if waiting and not slot.alive:
                rset.failovers += 1
                pending[sid] = rset.dispatch(task)
                started[sid] = now
            rset.maintain(now)

    def _handle_message(
        self, msg: tuple, bid: int, outputs: dict[int, ShardResult]
    ) -> None:
        """Route one result-queue message; stale batch ids are dropped."""
        tag = msg[0]
        if tag == "ready":
            _, sid, rid = msg
            self._sets[sid].on_ready(rid)
        elif tag == "init_error":
            _, sid, rid, message, _tb = msg
            self._sets[sid].last_error = message
        elif tag == "ok":
            _, sid, rid, result = msg
            self._sets[sid].on_result(rid)
            if result.batch_id == bid and sid not in outputs:
                outputs[sid] = result
        elif tag == "error":
            _, sid, rid, ebid, type_name, message, tb = msg
            self._sets[sid].on_result(rid)
            if ebid == bid:
                raise PipelineError(
                    f"shard {sid} replica {rid} raised {type_name}: "
                    f"{message}\n--- replica traceback ---\n{tb}"
                )

    def _merge(
        self, outputs: dict[int, ShardResult], packed: PackedReads
    ) -> QueryResult:
        """Cross-shard merge: same result as one whole-database query."""
        ordered = [outputs[sid] for sid in sorted(outputs)]
        merged = merge_partition_runs(
            [r.candidates() for r in ordered],
            m=ordered[0].target.shape[1],
        )
        result = QueryResult(
            candidates=merged,
            n_reads=ordered[0].n_reads,
            read_lengths=ordered[0].read_lengths,
            total_locations=sum(r.total_locations for r in ordered),
        )
        for r in ordered:
            for name, secs in r.stage_seconds.items():
                result.stages.add(name, secs)
        return result

    # ---------------------------------------------------------- maintenance

    def maintain(self) -> None:
        """Advance health bookkeeping outside the query path.

        Notes deaths, performs due respawns, and drains idle
        handshake messages.  Non-blocking: if a query holds the lock,
        its own sweep is already doing this work.
        """
        if not self._lock.acquire(blocking=False):
            return
        try:
            if self._state["closed"]:
                return
            now = time.monotonic()
            for rset in self._sets:
                for slot in rset.slots:
                    rset.note_death(slot, now)
                rset.maintain(now)
            for msg in self._take_messages():
                # bid 0 never issued: only ready/init_error are acted on
                self._handle_message(msg, 0, {})
        finally:
            self._lock.release()

    # ---------------------------------------------------------------- health

    @property
    def degraded(self) -> bool:
        """True while any shard has fewer live replicas than configured."""
        return any(rset.degraded for rset in self._sets)

    def health(self) -> list[dict]:
        """Per-shard health snapshots (see ``ReplicaSet.health``)."""
        return [rset.health() for rset in self._sets]

    def stats(self) -> dict:
        """Aggregate router statistics for the server's ``/stats``."""
        return {
            "shards": len(self._sets),
            "replicas": self.replicas,
            "batches": self.batches,
            "failovers": sum(r.failovers for r in self._sets),
            "respawns": sum(r.respawns for r in self._sets),
            "deaths": sum(r.deaths for r in self._sets),
            "degraded": self.degraded,
            "per_shard": self.health(),
        }

    def reload(self, directory: "str | os.PathLike") -> None:
        """Refuse hot-swap reloads, with the typed error (documented).

        The chosen sharded-reload semantics: a router's
        :class:`~repro.shard.plan.ShardPlan` assigns *partition ids*
        of the saved directory it was computed over, and every
        replica process is pinned to its shard's partitions of that
        directory -- a new directory may have a different partition
        count or balance, so rolling replicas onto it
        generation-by-generation could not keep the plan coherent
        mid-roll.  Sharded services therefore restart on the new
        directory (a load balancer over two instances gives the same
        zero-downtime effect one level up); every reload surface --
        this method, :meth:`repro.api.MetaCache.reload`, and ``POST
        /admin/reload`` (HTTP 409) -- raises
        :class:`~repro.errors.ReloadError` for sharded handles.
        """
        raise ReloadError(
            f"sharded router cannot hot-swap to {directory!s}: the shard "
            "plan is pinned to the saved directory it was computed over; "
            "restart the service on the new directory instead"
        )

    # --------------------------------------------------------------- teardown

    @property
    def closed(self) -> bool:
        """True once the router's processes have been torn down."""
        return bool(self._state["closed"])

    def close(self) -> None:
        """Shut every replica down (idempotent, never raises)."""
        _shutdown_router(self._state, self._sets)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
