"""Sharded, replicated serving: one logical index over N x R processes.

MetaCache-GPU's headline scaling result distributes one logical index
across multiple GPUs as partitions queried in parallel and merged
(Section 4.3; simulated by :mod:`repro.gpu.multi_gpu`).  This package
is the CPU/production analogue: a saved format-v2 database directory
is *planned* into N shards -- disjoint subsets of its partitions
(:class:`ShardPlan`) -- and each shard is served by R replica worker
processes that memory-map the directory through
:class:`~repro.core.database.FileBackedDatabaseHandle` and query only
their assigned partitions.

The :class:`ShardRouter` fans every packed read batch out to one
replica per shard (least-loaded dispatch), collects the per-shard
candidate runs, and merges them with the tie-break-stable
:func:`~repro.core.merge.merge_partition_runs` -- so classification
output is byte-identical to a single-process run over the whole
database, for any shard and replica count.  A replica that crashes
(or times out) mid-batch has its in-flight work retried on a sibling
replica and is respawned with bounded exponential backoff; the shard
is reported *degraded* through :meth:`ShardRouter.health` (surfaced
by the classification server's ``/healthz`` and ``/stats``) rather
than failing the request.  Only when a shard's last replica dies and
the respawn budget is exhausted does a batch fail, with the typed
:class:`~repro.errors.ShardFailedError`.

Wire the router in through ``MetaCache.open(path, shards=N,
replicas=R)`` or ``metacache-repro serve --shards N --replicas R``;
the plan/merge layers are also usable standalone.
"""

from repro.shard.plan import ShardAssignment, ShardPlan
from repro.shard.replica import ReplicaSet, ReplicaSlot
from repro.shard.router import ShardRouter

__all__ = [
    "ShardAssignment",
    "ShardPlan",
    "ReplicaSet",
    "ReplicaSlot",
    "ShardRouter",
]
