"""Wire-format payloads between the shard router and its replicas.

Everything crossing the process boundary is a plain picklable
dataclass of contiguous arrays and scalars (the ``spawn`` start
method re-imports a fresh interpreter, so payloads must carry no
process-local state -- repro-lint RL004 checks this package).

Router -> replica task queues carry :class:`ShardTask` (or ``None``
as the shutdown sentinel); each replica's own replica -> router
result queue carries tagged tuples (queues are per-slot and
per-generation -- never shared, never reused -- so a SIGKILLed
replica cannot poison a queue lock any surviving process needs):

- ``("ready", shard_id, replica_id)``
  -- mmap attach succeeded, replica is serving;
- ``("init_error", shard_id, replica_id, message, traceback_text)``
  -- attach failed, the replica process is exiting;
- ``("ok", shard_id, replica_id, ShardResult)``
  -- one batch's per-shard candidates;
- ``("error", shard_id, replica_id, batch_id, type_name, message,
  traceback_text)``
  -- the batch raised inside the replica (which keeps serving).

Results are tagged with the originating ``batch_id`` so the router
can discard stale duplicates: a ``batch_timeout`` failover kills the
slow replica and re-dispatches, but its completed answer may already
sit in its queue; the tag keeps such leftovers from being mistaken
for the sibling's answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import Candidates
from repro.core.config import ClassificationParams
from repro.pipeline.packed import PackedReads

__all__ = ["ShardTask", "ShardResult"]


@dataclass(frozen=True)
class ShardTask:
    """One read batch dispatched to (one replica of) every shard.

    ``packed`` pickles as 2-3 contiguous arrays (buffer, offsets,
    read ids) -- the natural wire format for query batches.  The
    decision-rule ``params`` travel per task, exactly like the
    parallel engine's chunk protocol, so per-call overrides reach the
    replicas; sketching parameters always come from the database the
    replica has mapped.
    """

    batch_id: int
    packed: PackedReads
    params: ClassificationParams


@dataclass(frozen=True)
class ShardResult:
    """One shard's candidate run for one batch (already locally merged).

    The five candidate arrays are the fields of
    :class:`~repro.core.candidates.Candidates`, shipped flat so the
    payload is plain arrays; :meth:`candidates` re-wraps them on the
    router side for the cross-shard merge.  ``read_lengths`` is
    returned by every shard identically (it derives from the packed
    batch, not the index) -- the router uses the first arrival.
    """

    batch_id: int
    target: np.ndarray
    window_first: np.ndarray
    window_last: np.ndarray
    score: np.ndarray
    valid: np.ndarray
    read_lengths: np.ndarray
    n_reads: int
    total_locations: int
    stage_seconds: dict[str, float]
    total_seconds: float

    def candidates(self) -> Candidates:
        """Re-wrap the flat arrays as a mergeable candidate set."""
        return Candidates(
            target=self.target,
            window_first=self.window_first,
            window_last=self.window_last,
            score=self.score,
            valid=self.valid,
        )
