"""Replica-process entry point of the shard router.

Each replica attaches its shard's database by memory-mapping the
saved format-v2 directory
(:class:`~repro.core.database.FileBackedDatabaseHandle` pickles as
just the path), then loops on its task queue running the unmodified
single-process candidate pipeline restricted to the shard's assigned
partitions -- ``query_database(..., partition_ids=...)`` -- so the
per-partition candidate runs are bit-identical to what a
whole-database query would have produced for those partitions, and
the in-worker merge across them (ascending partition order) is the
same tie-break-stable merge the single process applies.

Classification itself (the top-hit/LCA rule) stays on the router
side: it needs only target/taxonomy metadata, never the index, so
shipping candidates instead of classifications keeps the replica's
resident set to its own partitions' pages.

Wire protocol: see :mod:`repro.shard.messages`.  The task queue
carries :class:`~repro.shard.messages.ShardTask` and ``None`` as the
shutdown sentinel; like the parallel engine's workers, a replica
never raises -- failures are reported on the result queue and the
replica either keeps serving (batch errors) or exits (attach
failure, sentinel).
"""

from __future__ import annotations

import contextlib
import signal
import time
import traceback
from typing import Any, Sequence

from repro.core.database import FileBackedDatabaseHandle
from repro.core.query import query_database
from repro.shard.messages import ShardResult, ShardTask

__all__ = ["replica_main"]


def replica_main(
    shard_id: int,
    replica_id: int,
    handle: FileBackedDatabaseHandle,
    partition_ids: Sequence[int],
    tasks: Any,
    results: Any,
) -> None:
    """Serve one replica process until the shutdown sentinel arrives.

    Parameters
    ----------
    shard_id / replica_id:
        this process's coordinates in the shard topology; stamped on
        every result message so the router can route health and load
        accounting.
    handle:
        the mmap database handle (pickles as a directory path);
        attached here, so every replica shares one physical index
        copy through the page cache.
    partition_ids:
        the strictly ascending partition subset this shard serves.
    tasks / results:
        ``multiprocessing`` queues (see :mod:`repro.shard.messages`).
    """
    # a terminal Ctrl-C signals the whole foreground process group;
    # shutdown is the router's job (sentinel, then terminate/kill),
    # so replicas must not die noisily on the user's SIGINT
    with contextlib.suppress(OSError, ValueError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        db = handle.attach()
        pids = list(partition_ids)
    except BaseException as exc:  # noqa: BLE001 - reported to the router
        results.put(
            ("init_error", shard_id, replica_id, repr(exc), traceback.format_exc())
        )
        return
    results.put(("ready", shard_id, replica_id))
    try:
        while True:
            task = tasks.get()
            if task is None:
                return
            try:
                results.put(
                    ("ok", shard_id, replica_id, _query_shard(db, task, pids))
                )
            except BaseException as exc:  # noqa: BLE001 - reported to the router
                results.put(
                    (
                        "error",
                        shard_id,
                        replica_id,
                        task.batch_id,
                        type(exc).__name__,
                        str(exc),
                        traceback.format_exc(),
                    )
                )
    finally:
        del db
        handle.close()


def _query_shard(db: Any, task: ShardTask, partition_ids: list[int]) -> ShardResult:
    """Candidate generation over this shard's partitions, for one batch."""
    t0 = time.perf_counter()
    query_params = db.params.replace(classification=task.params)
    result = query_database(
        db, task.packed, params=query_params, partition_ids=partition_ids
    )
    cands = result.candidates
    return ShardResult(
        batch_id=task.batch_id,
        target=cands.target,
        window_first=cands.window_first,
        window_last=cands.window_last,
        score=cands.score,
        valid=cands.valid,
        read_lengths=result.read_lengths,
        n_reads=result.n_reads,
        total_locations=result.total_locations,
        stage_seconds=dict(result.stages.stages),
        total_seconds=time.perf_counter() - t0,
    )
