"""Partition-to-shard planning over a saved format-v2 database.

A shard plan splits an existing database directory's partitions into
N disjoint, jointly exhaustive shards *without touching the index*:
the v2 ``database.meta`` / ``manifest.json`` already record every
partition's size (``n_locations``), so planning is pure metadata work
-- no rebuild, no rewrite.  Each shard's replica processes then
memory-map the whole directory (a cheap O(metadata) cold open) but
query only their assigned partition ids, so the unqueried partitions'
index pages are never faulted in.

Assignment is greedy by weight: partitions are placed heaviest-first
onto the currently lightest shard, the classic LPT balance heuristic.
The plan is deterministic (ties break on lowest id) and
order-independent of how the result is later merged, because
candidate targets are unique across partitions.
"""

from __future__ import annotations

import heapq
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DatabaseFormatError

__all__ = ["ShardAssignment", "ShardPlan"]

_FORMAT_V2 = 2


@dataclass(frozen=True)
class ShardAssignment:
    """One shard's slice of the database: which partitions, how heavy."""

    shard_id: int
    partition_ids: tuple[int, ...]
    weight: int

    @property
    def n_partitions(self) -> int:
        """Number of database partitions this shard serves."""
        return len(self.partition_ids)


@dataclass(frozen=True)
class ShardPlan:
    """A complete partition-to-shard assignment for one database.

    ``assignments`` is ordered by shard id; every partition of the
    directory appears in exactly one shard (validated on
    construction).  Build one with :meth:`from_directory`.
    """

    directory: str
    n_partitions: int
    assignments: tuple[ShardAssignment, ...]

    def __post_init__(self) -> None:
        """Validate disjoint, exhaustive coverage of the partitions."""
        seen: list[int] = []
        for a in self.assignments:
            seen.extend(a.partition_ids)
        if sorted(seen) != list(range(self.n_partitions)):
            raise ValueError(
                f"shard plan does not cover partitions 0..{self.n_partitions - 1} "
                f"exactly once: {seen}"
            )

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.assignments)

    @classmethod
    def from_directory(
        cls, directory: "str | os.PathLike[str]", n_shards: int
    ) -> "ShardPlan":
        """Plan ``n_shards`` shards over a saved format-v2 directory.

        Reads ``database.meta`` and ``manifest.json`` only; the index
        arrays themselves are never opened.  Raises
        :class:`~repro.errors.DatabaseFormatError` when the directory
        is missing, not format v2 (upgrade with ``metacache-repro
        convert``), or its metadata is corrupt, and ``ValueError``
        when ``n_shards`` is not in ``1..n_partitions`` (a shard with
        no partitions could never contribute candidates).
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        path = Path(directory)
        meta = _read_json(path / "database.meta")
        version = int(meta.get("format_version", 1))
        if version != _FORMAT_V2:
            raise DatabaseFormatError(
                f"{path}: sharding requires a format-v2 database (found "
                f"v{version}); upgrade with `metacache-repro convert`"
            )
        n_partitions = int(meta["n_partitions"])
        if n_shards > n_partitions:
            raise ValueError(
                f"cannot plan {n_shards} shard(s) over {n_partitions} "
                "partition(s): every shard needs at least one partition"
            )
        manifest = _read_json(path / "manifest.json")
        entries = manifest.get("partitions")
        if not isinstance(entries, list) or len(entries) != n_partitions:
            raise DatabaseFormatError(
                f"{path / 'manifest.json'}: manifest lists "
                f"{len(entries) if isinstance(entries, list) else 'no'} "
                f"partition(s), metadata says {n_partitions}"
            )
        weights = {
            int(e["partition_id"]): int(e["n_locations"]) for e in entries
        }
        if sorted(weights) != list(range(n_partitions)):
            raise DatabaseFormatError(
                f"{path / 'manifest.json'}: partition ids are not dense"
            )
        return cls(
            directory=str(path),
            n_partitions=n_partitions,
            assignments=_assign(weights, n_shards),
        )

    def describe(self) -> str:
        """One line per shard, for banners and logs."""
        lines = []
        for a in self.assignments:
            pids = ",".join(str(p) for p in a.partition_ids)
            lines.append(
                f"shard {a.shard_id}: partition(s) [{pids}] "
                f"({a.weight:,} locations)"
            )
        return "\n".join(lines)


def _read_json(path: Path) -> dict:
    """Load one metadata JSON file, mapping failures to the typed error."""
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise DatabaseFormatError(
            f"no format-v2 database metadata at {path} ({exc})"
        ) from exc
    except json.JSONDecodeError as exc:
        raise DatabaseFormatError(f"{path}: corrupt metadata ({exc})") from exc
    if not isinstance(payload, dict):
        raise DatabaseFormatError(f"{path}: expected a JSON object")
    return payload


def _assign(
    weights: dict[int, int], n_shards: int
) -> tuple[ShardAssignment, ...]:
    """Greedy LPT: heaviest partition first onto the lightest shard."""
    # (weight, shard_id) heap: ties deterministically pick the lowest id
    heap: list[tuple[int, int]] = [(0, s) for s in range(n_shards)]
    heapq.heapify(heap)
    members: dict[int, list[int]] = {s: [] for s in range(n_shards)}
    loads: dict[int, int] = {s: 0 for s in range(n_shards)}
    for pid in sorted(weights, key=lambda p: (-weights[p], p)):
        load, shard = heapq.heappop(heap)
        members[shard].append(pid)
        loads[shard] = load + weights[pid]
        heapq.heappush(heap, (loads[shard], shard))
    return tuple(
        ShardAssignment(
            shard_id=s,
            partition_ids=tuple(sorted(members[s])),
            weight=loads[s],
        )
        for s in range(n_shards)
    )
