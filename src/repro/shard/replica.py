"""Replica management for one shard: dispatch, health, respawn.

A :class:`ReplicaSet` owns R :class:`ReplicaSlot` entries for one
shard.  Each slot binds a dedicated task queue *and* a dedicated
result queue to the current generation of a worker process running
:func:`repro.shard.worker.replica_main`.  Both queues are created
fresh on every :meth:`ReplicaSlot.spawn`: a process killed with
SIGKILL can die while holding a queue's internal pipe lock, and any
peer sharing that queue would then block forever -- so no queue is
ever shared between replicas or reused across generations, and a
dead replica's queues are simply abandoned (undelivered tasks are
re-dispatched by the router's failover path; undelivered results are
superseded by the sibling's batch-id-tagged answer).

Dispatch is least-loaded: a batch goes to the live slot with the
fewest in-flight batches (ties to the lowest replica id, so routing
is deterministic under test).  Death handling is split between the
router and this class: the router *detects* (exit codes, timeouts)
and re-dispatches in-flight work; the set *accounts* --
:meth:`ReplicaSet.note_death` records the death and schedules the
respawn with bounded exponential backoff, :meth:`ReplicaSet.maintain`
performs respawns that have come due, and a successful attach
handshake (:meth:`ReplicaSet.on_ready`) resets the slot's backoff.
A shard with zero live replicas left attempts one immediate
emergency respawn at dispatch time; only when even that is exhausted
does dispatch raise :class:`~repro.errors.ShardFailedError`.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.core.database import FileBackedDatabaseHandle
from repro.errors import ShardFailedError
from repro.shard.messages import ShardTask
from repro.shard.worker import replica_main

__all__ = ["ReplicaSlot", "ReplicaSet"]


class ReplicaSlot:
    """One replica position: the current process and *its* queues.

    The slot survives its process: respawning starts a fresh
    ``spawn`` process (a new *generation*) on freshly created queues
    -- the old generation's queues may hold locks a SIGKILLed process
    died with, so they are abandoned, never reused.
    ``noted_generation`` tracks which generation's death has already
    been accounted, so exit-code polling is idempotent.
    """

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        ctx: Any,
        handle: FileBackedDatabaseHandle,
        partition_ids: Sequence[int],
    ) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self._ctx = ctx
        self._handle = handle
        self._partition_ids = tuple(partition_ids)
        self.tasks: Any = None
        self.results: Any = None
        self.process: Any = None
        self.ready = False
        self.inflight = 0
        self.generation = 0
        self.noted_generation = 0
        self.respawn_attempts = 0
        self.next_respawn_at = 0.0

    def spawn(self) -> None:
        """Start a new process generation on brand-new queues."""
        self._release_queues()
        self.tasks = self._ctx.Queue()
        self.results = self._ctx.Queue()
        self.generation += 1
        self.ready = False
        self.inflight = 0
        self.process = self._ctx.Process(
            target=replica_main,
            args=(
                self.shard_id,
                self.replica_id,
                self._handle,
                self._partition_ids,
                self.tasks,
                self.results,
            ),
            daemon=True,
            name=(
                f"metacache-shard-{self.shard_id}-replica-{self.replica_id}"
                f"-gen{self.generation}"
            ),
        )
        self.process.start()

    def _release_queues(self) -> None:
        """Drop the previous generation's queues without draining them."""
        for q in (self.tasks, self.results):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover
                pass

    @property
    def alive(self) -> bool:
        """True while the current process generation is running.

        A replica exits only on the shutdown sentinel, so *any* exit
        code here -- including 0 (e.g. after an attach failure) --
        means the slot is out of service.
        """
        return self.process is not None and self.process.exitcode is None

    @property
    def readable(self) -> bool:
        """True when it is safe to read this slot's result queue.

        Safe means the writer is alive, or exited *cleanly*
        (``exitcode >= 0``: the feeder thread flushed before exit, so
        any queued message -- e.g. an ``init_error`` report -- is
        complete).  A signal death (negative exit code) may have left
        a truncated message in the pipe; reading it would block
        forever, so the queue is abandoned instead.
        """
        return self.process is not None and (
            self.process.exitcode is None or self.process.exitcode >= 0
        )

    @property
    def death_unnoted(self) -> bool:
        """True when the current generation died and is not yet accounted."""
        return (
            self.process is not None
            and self.process.exitcode is not None
            and self.noted_generation < self.generation
        )


class ReplicaSet:
    """The R replicas of one shard, with failover book-keeping.

    Parameters
    ----------
    shard_id / partition_ids:
        the shard's coordinates in the plan.
    handle:
        mmap database handle every replica attaches (one page-cache
        copy of the index across all of them).
    ctx:
        the router's ``spawn`` multiprocessing context; each slot
        creates its own task/result queues from it per generation.
    replicas:
        slot count (>= 1).
    respawn_backoff / respawn_backoff_cap:
        first-respawn delay in seconds, doubling per consecutive
        death up to the cap; a successful ready handshake resets the
        schedule.
    max_respawns:
        consecutive respawns allowed per slot before it is abandoned
        (a crash-looping replica must not flap forever).
    """

    def __init__(
        self,
        shard_id: int,
        partition_ids: Sequence[int],
        handle: FileBackedDatabaseHandle,
        ctx: Any,
        *,
        replicas: int,
        respawn_backoff: float = 0.5,
        respawn_backoff_cap: float = 5.0,
        max_respawns: int = 3,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_id = shard_id
        self.partition_ids = tuple(partition_ids)
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_cap = respawn_backoff_cap
        self.max_respawns = max_respawns
        self.slots = [
            ReplicaSlot(shard_id, rid, ctx, handle, partition_ids)
            for rid in range(replicas)
        ]
        self.deaths = 0
        self.respawns = 0
        self.failovers = 0
        self.last_error: str | None = None

    # ------------------------------------------------------------- dispatch

    def start(self) -> None:
        """Spawn every replica slot's first generation."""
        for slot in self.slots:
            slot.spawn()

    def dispatch(self, task: ShardTask) -> ReplicaSlot:
        """Queue one batch on the least-loaded live replica.

        With no live replica left, one emergency respawn is attempted
        immediately (backoff is for crash loops, not for the last
        line of defense); if no slot has respawn budget left, raises
        :class:`~repro.errors.ShardFailedError`.
        """
        live = [s for s in self.slots if s.alive]
        if not live:
            slot = self._emergency_respawn()
            if slot is None:
                detail = f" (last error: {self.last_error})" if self.last_error else ""
                raise ShardFailedError(
                    f"shard {self.shard_id}: every replica is dead and the "
                    f"respawn budget ({self.max_respawns} per replica) is "
                    f"exhausted{detail}"
                )
            live = [slot]
        slot = min(live, key=lambda s: (s.inflight, s.replica_id))
        slot.tasks.put(task)
        slot.inflight += 1
        return slot

    def _emergency_respawn(self) -> ReplicaSlot | None:
        """Respawn the least-flapping dead slot now, ignoring backoff."""
        eligible = [
            s
            for s in self.slots
            if not s.alive and s.respawn_attempts <= self.max_respawns
        ]
        if not eligible:
            return None
        slot = min(eligible, key=lambda s: (s.respawn_attempts, s.replica_id))
        self.note_death(slot, time.monotonic())  # account first if unnoted
        slot.spawn()
        self.respawns += 1
        return slot

    # ------------------------------------------------------------ accounting

    def note_death(self, slot: ReplicaSlot, now: float) -> bool:
        """Account one process death; returns False if already noted.

        Zeroes the slot's in-flight count (its queued work is lost or
        stale) and schedules the respawn: ``backoff * 2**(deaths-1)``
        seconds from ``now``, capped.
        """
        if not slot.death_unnoted:
            return False
        slot.noted_generation = slot.generation
        slot.ready = False
        slot.inflight = 0
        slot.respawn_attempts += 1
        delay = min(
            self.respawn_backoff_cap,
            self.respawn_backoff * (2.0 ** (slot.respawn_attempts - 1)),
        )
        slot.next_respawn_at = now + delay
        self.deaths += 1
        return True

    def maintain(self, now: float) -> int:
        """Respawn dead slots whose backoff has elapsed; returns count."""
        spawned = 0
        for slot in self.slots:
            self.note_death(slot, now)
            if (
                not slot.alive
                and slot.noted_generation == slot.generation
                and slot.respawn_attempts <= self.max_respawns
                and now >= slot.next_respawn_at
            ):
                slot.spawn()
                self.respawns += 1
                spawned += 1
        return spawned

    def on_ready(self, replica_id: int) -> None:
        """A replica finished its attach handshake: reset its backoff."""
        slot = self.slots[replica_id]
        slot.ready = True
        slot.respawn_attempts = 0
        slot.next_respawn_at = 0.0

    def on_result(self, replica_id: int) -> None:
        """A replica answered one batch: drop its in-flight count."""
        slot = self.slots[replica_id]
        slot.inflight = max(0, slot.inflight - 1)

    # ---------------------------------------------------------------- health

    @property
    def live(self) -> int:
        """Replicas currently running (attached or still attaching)."""
        return sum(1 for s in self.slots if s.alive)

    @property
    def degraded(self) -> bool:
        """True while fewer replicas are live than were configured."""
        return self.live < len(self.slots)

    def health(self) -> dict:
        """One shard's health snapshot for ``/healthz`` and ``/stats``."""
        return {
            "shard": self.shard_id,
            "partitions": list(self.partition_ids),
            "replicas": len(self.slots),
            "live": self.live,
            "ready": sum(1 for s in self.slots if s.alive and s.ready),
            "degraded": self.degraded,
            "deaths": self.deaths,
            "respawns": self.respawns,
            "failovers": self.failovers,
        }
