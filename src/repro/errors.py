"""The exception hierarchy of the public API.

Every error the package raises on bad *input* (as opposed to bugs)
derives from :class:`MetaCacheError`, so callers can catch one base
class at the top of a serving loop.  The concrete classes also derive
from :class:`ValueError` because that is what the pre-API code raised
-- existing ``except ValueError`` call sites keep working.

Defined here (not inside :mod:`repro.api`) so that low-level modules
like :mod:`repro.core.io` and :mod:`repro.genomics.io` can raise them
without importing the facade they sit underneath; :mod:`repro.api`
re-exports the whole hierarchy.
"""

from __future__ import annotations

__all__ = [
    "MetaCacheError",
    "BuildError",
    "DatabaseFormatError",
    "InvalidReadError",
    "InvalidMappingError",
    "UnknownFormatError",
    "PipelineError",
    "WorkerCrashError",
    "ShardFailedError",
    "SharedMemoryUnavailableError",
    "ReloadError",
    "ServerError",
    "OverloadedError",
]


class MetaCacheError(Exception):
    """Base class for every error raised by the public API."""


class BuildError(MetaCacheError, KeyError):
    """Reference input cannot be turned into database content.

    Raised during database construction for an accession with no
    entry in the accession -> taxid mapping or a reference whose
    taxon id is absent from the taxonomy.  Derives from ``KeyError``
    because that is what the pre-builder code raised -- existing
    ``except KeyError`` call sites keep working.  The message always
    names the offending file/header/taxon; the structured fields are
    also carried as attributes for programmatic handling.

    Attributes
    ----------
    file:
        the reference file being ingested (``None`` for in-memory
        references).
    header:
        the sequence header (or target name) that failed.
    taxon_id:
        the unknown taxon id (``None`` for mapping failures).
    """

    def __init__(
        self,
        message: str,
        *,
        file: "str | None" = None,
        header: "str | None" = None,
        taxon_id: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.file = file
        self.header = header
        self.taxon_id = taxon_id

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; restore plain text so
        # the file/header/taxon context reads naturally in tracebacks.
        return self.args[0] if self.args else ""


class DatabaseFormatError(MetaCacheError, ValueError):
    """A saved database is missing, truncated, or has the wrong format."""


class InvalidReadError(MetaCacheError, ValueError):
    """Read input could not be understood (file format or in-memory type)."""


class InvalidMappingError(MetaCacheError, ValueError):
    """An accession->taxid mapping file is malformed."""


class UnknownFormatError(MetaCacheError, ValueError):
    """An output format name does not match any registered sink."""


class PipelineError(MetaCacheError, RuntimeError):
    """A streaming classification run failed mid-flight.

    Raised by :meth:`repro.api.QuerySession.classify_files` when a
    producer or worker fails for a reason that is not already a typed
    :class:`MetaCacheError`; the message always names the read file
    being classified so multi-file batch jobs can report which input
    broke.  The original exception is chained as ``__cause__``.
    """


class WorkerCrashError(PipelineError):
    """A classification worker process died without reporting a result.

    Carries the worker id and exit code in the message.  The parent
    engine shuts the remaining pool down before raising, so no orphan
    processes or shared-memory blocks are left behind.
    """


class ShardFailedError(WorkerCrashError):
    """Every replica of an index shard is dead and cannot be respawned.

    Raised by :meth:`repro.shard.ShardRouter.query` when a shard's
    last live replica died mid-batch and the bounded respawn budget is
    exhausted, so the batch cannot fail over anywhere.  Single-replica
    crashes never surface as this error -- they are retried on a
    sibling replica and only degrade the shard's health report.
    """


class SharedMemoryUnavailableError(MetaCacheError, RuntimeError):
    """POSIX shared memory cannot be used on this platform/configuration.

    Raised by :meth:`repro.core.database.SharedDatabaseHandle.export`
    when creating a block fails (e.g. no ``/dev/shm`` mount or no
    permission).  Callers that can degrade — the query engine — catch
    it and fall back to single-process classification instead.
    """


class ReloadError(MetaCacheError, RuntimeError):
    """A hot-swap reload cannot be performed on this handle.

    Raised by :meth:`repro.api.MetaCache.reload` and
    :meth:`repro.api.QuerySession.swap_database` when the handle is
    sharded (``shards=N``): shard plans pin partition ids to the saved
    directory they were computed over, so a new index cannot be
    attached under a running router.  Restart the service on the new
    directory instead.  The HTTP admin endpoint maps this onto a 409.
    """


class ServerError(MetaCacheError, RuntimeError):
    """A request cannot be served by the classification server.

    Base class of every serving-layer failure that is the *request's*
    (or the server state's) fault rather than a bug: submitting to a
    server that is shutting down, exceeding the request-body bound,
    and the admission-control rejections below.  The HTTP layer maps
    these onto 4xx/5xx responses; in-process callers of
    :class:`repro.server.MicroBatcher` catch them directly.
    """


class OverloadedError(ServerError):
    """The server's bounded admission queue is full.

    Raised by :meth:`repro.server.MicroBatcher.submit` when accepting
    the request would push the queued-read count past the configured
    bound.  The HTTP layer answers 503 with a ``Retry-After`` header
    taken from :attr:`retry_after_seconds`; clients should back off
    and retry rather than treat this as a hard failure.

    Attributes
    ----------
    retry_after_seconds:
        suggested client back-off, derived from the server's batch
        delay (always >= 1 second so the header stays integral).
    """

    def __init__(self, message: str, *, retry_after_seconds: int = 1) -> None:
        super().__init__(message)
        self.retry_after_seconds = max(1, int(retry_after_seconds))
