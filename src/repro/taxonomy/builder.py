"""Synthetic taxonomy construction for simulated genome collections.

Builds a tree shaped like the slice of NCBI taxonomy a real database
would use: root -> domain -> (per-genus chain of family/order/...) ->
genus -> species -> one SEQUENCE-rank taxon per reference genome.
The intermediate ranks are collapsed to keep trees small; genus and
species are the ranks the paper's accuracy table evaluates, so those
levels are always present and faithful to the simulator's genus /
species structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.genomics.simulate import SimulatedGenome
from repro.taxonomy.ranks import Rank
from repro.taxonomy.tree import Taxonomy

__all__ = ["build_taxonomy_for_genomes", "GenomeTaxa"]

ROOT_ID = 1
DOMAIN_ID = 2
_GENUS_BASE = 1_000
_SPECIES_BASE = 100_000
_SEQUENCE_BASE = 10_000_000


@dataclass(frozen=True)
class GenomeTaxa:
    """Mapping from a genome collection into its taxonomy.

    ``target_taxon[i]`` is the SEQUENCE-rank taxon id assigned to
    genome ``i``; ``species_taxon[i]`` / ``genus_taxon[i]`` are the
    corresponding ancestors.  Kept as plain lists so the mapping
    serializes trivially with the database metadata.
    """

    target_taxon: list[int]
    species_taxon: list[int]
    genus_taxon: list[int]


def genus_taxid(genus: int) -> int:
    return _GENUS_BASE + genus


def species_taxid(species: int) -> int:
    return _SPECIES_BASE + species


def sequence_taxid(target: int) -> int:
    return _SEQUENCE_BASE + target


def build_taxonomy_for_genomes(
    genomes: list[SimulatedGenome],
) -> tuple[Taxonomy, GenomeTaxa]:
    """Create the taxonomy covering a genome collection.

    Genus/species indices come from the simulator; every genome
    additionally receives its own SEQUENCE-rank leaf so that targets
    from the same species remain distinguishable (MetaCache's
    per-target taxa).
    """
    nodes: list[tuple[int, int, Rank, str]] = [
        (ROOT_ID, ROOT_ID, Rank.ROOT, "root"),
        (DOMAIN_ID, ROOT_ID, Rank.DOMAIN, "synthetic domain"),
    ]
    seen_genera: set[int] = set()
    seen_species: set[int] = set()
    target_taxon: list[int] = []
    species_taxon: list[int] = []
    genus_taxon: list[int] = []
    for t, g in enumerate(genomes):
        gid = genus_taxid(g.genus)
        sid = species_taxid(g.species)
        if g.genus not in seen_genera:
            nodes.append((gid, DOMAIN_ID, Rank.GENUS, f"genus {g.genus}"))
            seen_genera.add(g.genus)
        if g.species not in seen_species:
            nodes.append((sid, gid, Rank.SPECIES, f"species {g.species}"))
            seen_species.add(g.species)
        tid = sequence_taxid(t)
        nodes.append((tid, sid, Rank.SEQUENCE, g.name))
        target_taxon.append(tid)
        species_taxon.append(sid)
        genus_taxon.append(gid)
    taxonomy = Taxonomy(nodes)
    return taxonomy, GenomeTaxa(
        target_taxon=target_taxon,
        species_taxon=species_taxon,
        genus_taxon=genus_taxon,
    )
