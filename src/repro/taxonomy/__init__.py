"""Taxonomy substrate: tree, ranks, lineages, constant-time LCA.

MetaCache builds a taxonomic tree from NCBI dump files, links every
reference target to a node, and during classification computes lowest
common ancestors in constant time via a precomputed acceleration
structure (Section 4.2).  This package implements all of that:

- :mod:`repro.taxonomy.ranks` -- the canonical rank ladder.
- :mod:`repro.taxonomy.tree` -- the tree itself.
- :mod:`repro.taxonomy.lineage` -- ranked lineages per taxon.
- :mod:`repro.taxonomy.lca` -- Euler-tour + sparse-table RMQ giving
  O(1) pairwise LCA (the paper's "acceleration structure").
- :mod:`repro.taxonomy.ncbi` -- ``nodes.dmp``/``names.dmp`` IO.
- :mod:`repro.taxonomy.builder` -- synthetic taxonomies for the
  simulated genome collections.
"""

from repro.taxonomy.ranks import Rank
from repro.taxonomy.tree import Taxonomy, TaxonomyError
from repro.taxonomy.lca import LcaIndex
from repro.taxonomy.lineage import RankedLineages
from repro.taxonomy.ncbi import load_ncbi_dump, write_ncbi_dump
from repro.taxonomy.builder import build_taxonomy_for_genomes

__all__ = [
    "Rank",
    "Taxonomy",
    "TaxonomyError",
    "LcaIndex",
    "RankedLineages",
    "load_ncbi_dump",
    "write_ncbi_dump",
    "build_taxonomy_for_genomes",
]
