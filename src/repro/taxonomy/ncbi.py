"""NCBI taxonomy dump IO (``nodes.dmp`` / ``names.dmp``).

MetaCache consumes the standard NCBI dump format; we parse and write
the same pipe-delimited layout so that (a) real dumps could be loaded
unchanged and (b) the simulators can persist their synthetic
taxonomies for the file-based pipeline tests.

Format (fields separated by ``\\t|\\t``, rows ending ``\\t|``):

- ``nodes.dmp``: tax_id | parent tax_id | rank | ...
- ``names.dmp``: tax_id | name_txt | unique name | name class
  (only rows with class ``scientific name`` are used).
"""

from __future__ import annotations

import os

from repro.taxonomy.ranks import Rank
from repro.taxonomy.tree import Taxonomy

__all__ = ["load_ncbi_dump", "write_ncbi_dump"]


def _parse_dmp_line(line: str) -> list[str]:
    line = line.rstrip("\n")
    if line.endswith("\t|"):
        line = line[:-2]
    return [f.strip() for f in line.split("\t|\t")]


def load_ncbi_dump(nodes_path: str | os.PathLike, names_path: str | os.PathLike) -> Taxonomy:
    """Build a :class:`Taxonomy` from NCBI nodes.dmp + names.dmp."""
    names: dict[int, str] = {}
    with open(names_path, "r", encoding="utf-8") as fh:
        for line in fh:
            fields = _parse_dmp_line(line)
            if len(fields) >= 4 and fields[3] == "scientific name":
                names[int(fields[0])] = fields[1]
    nodes: list[tuple[int, int, Rank, str]] = []
    with open(nodes_path, "r", encoding="utf-8") as fh:
        for line in fh:
            fields = _parse_dmp_line(line)
            if len(fields) < 3:
                continue
            tid = int(fields[0])
            parent = int(fields[1])
            try:
                rank = Rank.from_name(fields[2])
            except ValueError:
                rank = Rank.SEQUENCE  # unknown intermediate ranks -> 'no rank'
            if tid == parent:
                rank = Rank.ROOT
            nodes.append((tid, parent, rank, names.get(tid, f"taxon {tid}")))
    return Taxonomy(nodes)


def write_ncbi_dump(
    taxonomy: Taxonomy,
    nodes_path: str | os.PathLike,
    names_path: str | os.PathLike,
) -> None:
    """Persist a taxonomy in NCBI dump format (inverse of load)."""
    with open(nodes_path, "w", encoding="utf-8") as nf:
        for i, tid in enumerate(taxonomy.ids):
            parent = taxonomy.ids[taxonomy.parent_index[i]]
            rank = Rank(int(taxonomy.ranks[i]))
            nf.write(f"{int(tid)}\t|\t{int(parent)}\t|\t{rank.ncbi_name()}\t|\n")
    with open(names_path, "w", encoding="utf-8") as mf:
        for i, tid in enumerate(taxonomy.ids):
            name = taxonomy.names[i]
            mf.write(f"{int(tid)}\t|\t{name}\t|\t\t|\tscientific name\t|\n")
