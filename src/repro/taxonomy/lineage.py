"""Ranked lineages: per-taxon ancestor at every canonical rank.

The query phase needs "which species / genus does this target's taxon
belong to" lookups for every classified read; precomputing a dense
(n_taxa x n_ranks) matrix turns those into single indexed loads --
this is the host-side analogue of the lineage cache MetaCache builds
before querying (Section 4.2).
"""

from __future__ import annotations

import numpy as np

from repro.taxonomy.ranks import Rank
from repro.taxonomy.tree import Taxonomy

__all__ = ["RankedLineages"]


class RankedLineages:
    """Dense ancestor-at-rank matrix over a taxonomy.

    ``matrix[i, r]`` is the *taxon id* of the ancestor of taxon with
    dense index ``i`` at rank ``r`` (0 where the lineage has no node
    at that rank).
    """

    NO_TAXON = 0  # NCBI ids are >= 1, so 0 is a safe "absent" marker

    def __init__(self, taxonomy: Taxonomy) -> None:
        self.taxonomy = taxonomy
        n = len(taxonomy)
        n_ranks = int(Rank.ROOT) + 1
        matrix = np.zeros((n, n_ranks), dtype=np.int64)
        order = np.argsort(taxonomy._depths, kind="stable")
        for i in order:  # parents (shallower) always processed first
            p = int(taxonomy.parent_index[i])
            if i != taxonomy.root_index:
                matrix[i] = matrix[p]
            r = int(taxonomy.ranks[i])
            matrix[i, r] = int(taxonomy.ids[i])
        self.matrix = matrix

    def ancestor_at_rank(self, taxon_id: int, rank: Rank) -> int | None:
        """Taxon id of the ancestor at ``rank`` (None if absent)."""
        val = int(self.matrix[self.taxonomy.index_of(taxon_id), int(rank)])
        return None if val == self.NO_TAXON else val

    def ancestors_at_rank(self, dense_indices: np.ndarray, rank: Rank) -> np.ndarray:
        """Vectorized ancestor-at-rank over dense indices (0 = absent)."""
        return self.matrix[np.asarray(dense_indices, dtype=np.int64), int(rank)]

    def rank_resolved(self, taxon_id: int) -> Rank:
        """Most specific canonical rank present on the taxon's lineage.

        A read classified to an internal LCA node "resolves" only to
        that node's rank; the accuracy evaluation uses this to decide
        whether a prediction counts at species / genus level.
        """
        row = self.matrix[self.taxonomy.index_of(taxon_id)]
        for r in range(int(Rank.SEQUENCE), int(Rank.ROOT) + 1):
            if row[r] == taxon_id:
                return Rank(r)
        # A taxon is always present at its own rank; reaching here
        # means taxon_id is the root.
        return Rank.ROOT
