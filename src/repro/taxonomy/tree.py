"""The taxonomy tree.

Stores the node set in struct-of-arrays form (ids, parents, ranks,
names) with a dict for id -> dense-index resolution.  All per-node
queries are O(1); whole-tree traversals are vectorized where possible.
The root is its own parent, following the NCBI ``nodes.dmp``
convention (taxid 1 has parent 1).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.taxonomy.ranks import Rank

__all__ = ["Taxonomy", "TaxonomyError"]


class TaxonomyError(ValueError):
    """Raised on malformed taxonomies (cycles, orphans, duplicates)."""


class Taxonomy:
    """Immutable-after-construction taxonomy tree.

    Parameters
    ----------
    nodes:
        iterable of ``(taxon_id, parent_id, rank, name)`` tuples.
        Exactly one node must be its own parent (the root).
    """

    def __init__(self, nodes: Iterable[tuple[int, int, Rank, str]]) -> None:
        entries = list(nodes)
        if not entries:
            raise TaxonomyError("taxonomy must contain at least a root node")
        self.ids = np.array([e[0] for e in entries], dtype=np.int64)
        parents_by_id = np.array([e[1] for e in entries], dtype=np.int64)
        self.ranks = np.array([int(e[2]) for e in entries], dtype=np.int8)
        self.names = [e[3] for e in entries]
        self._index: dict[int, int] = {}
        for i, tid in enumerate(self.ids):
            if int(tid) in self._index:
                raise TaxonomyError(f"duplicate taxon id {int(tid)}")
            self._index[int(tid)] = i

        roots = [i for i, e in enumerate(entries) if e[0] == e[1]]
        if len(roots) != 1:
            raise TaxonomyError(f"expected exactly one root, found {len(roots)}")
        self.root_index = roots[0]
        self.root_id = int(self.ids[self.root_index])

        # parent as dense index
        try:
            self.parent_index = np.array(
                [self._index[int(p)] for p in parents_by_id], dtype=np.int64
            )
        except KeyError as exc:
            raise TaxonomyError(f"parent taxon {exc.args[0]} not in taxonomy") from None

        self._validate_acyclic()
        self._depths = self._compute_depths()

    # -- construction checks -------------------------------------------------

    def _validate_acyclic(self) -> None:
        """Every node must reach the root; detects cycles and orphans."""
        n = len(self.ids)
        state = np.zeros(n, dtype=np.int8)  # 0 unknown, 1 ok
        state[self.root_index] = 1
        for i in range(n):
            path = []
            j = i
            while state[j] == 0:
                path.append(j)
                j = int(self.parent_index[j])
                if len(path) > n:
                    raise TaxonomyError("cycle detected in taxonomy")
            for p in path:
                state[p] = 1

    def _compute_depths(self) -> np.ndarray:
        n = len(self.ids)
        depths = np.full(n, -1, dtype=np.int64)
        depths[self.root_index] = 0
        for i in range(n):
            path = []
            j = i
            while depths[j] < 0:
                path.append(j)
                j = int(self.parent_index[j])
            d = int(depths[j])
            for p in reversed(path):
                d += 1
                depths[p] = d
        return depths

    # -- basic queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, taxon_id: int) -> bool:
        return int(taxon_id) in self._index

    def index_of(self, taxon_id: int) -> int:
        """Dense index of a taxon id (KeyError if absent)."""
        return self._index[int(taxon_id)]

    def id_of(self, index: int) -> int:
        return int(self.ids[index])

    def parent_id(self, taxon_id: int) -> int:
        return int(self.ids[self.parent_index[self.index_of(taxon_id)]])

    def rank_of(self, taxon_id: int) -> Rank:
        return Rank(int(self.ranks[self.index_of(taxon_id)]))

    def name_of(self, taxon_id: int) -> str:
        return self.names[self.index_of(taxon_id)]

    def depth_of(self, taxon_id: int) -> int:
        return int(self._depths[self.index_of(taxon_id)])

    @property
    def depths(self) -> np.ndarray:
        """Depth per dense index (root = 0); read-only view."""
        return self._depths

    def lineage(self, taxon_id: int) -> list[int]:
        """Taxon ids from the node up to and including the root."""
        out = []
        i = self.index_of(taxon_id)
        while True:
            out.append(int(self.ids[i]))
            if i == self.root_index:
                return out
            i = int(self.parent_index[i])

    def ancestor_at_rank(self, taxon_id: int, rank: Rank) -> int | None:
        """First ancestor (or self) at exactly ``rank``; None if absent."""
        i = self.index_of(taxon_id)
        while True:
            if Rank(int(self.ranks[i])) == rank:
                return int(self.ids[i])
            if i == self.root_index:
                return None
            i = int(self.parent_index[i])

    def lca_naive(self, a: int, b: int) -> int:
        """Reference LCA by lineage intersection (O(depth)); used to
        validate the O(1) :class:`repro.taxonomy.lca.LcaIndex`."""
        seen = set(self.lineage(a))
        i = self.index_of(b)
        while True:
            tid = int(self.ids[i])
            if tid in seen:
                return tid
            if i == self.root_index:
                return self.root_id
            i = int(self.parent_index[i])

    def iter_ids(self) -> Iterator[int]:
        for tid in self.ids:
            yield int(tid)

    def children_map(self) -> dict[int, list[int]]:
        """taxon_id -> list of child taxon ids (root excluded from own)."""
        out: dict[int, list[int]] = {int(t): [] for t in self.ids}
        for i, p in enumerate(self.parent_index):
            if i != self.root_index:
                out[int(self.ids[p])].append(int(self.ids[i]))
        return out

    def taxa_at_rank(self, rank: Rank) -> list[int]:
        mask = self.ranks == np.int8(int(rank))
        return [int(t) for t in self.ids[mask]]
