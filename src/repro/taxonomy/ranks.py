"""The canonical taxonomic rank ladder.

Ranks are ordered from most specific (``SEQUENCE``, the per-target
pseudo-rank MetaCache uses for individual reference sequences) to the
root.  Integer values grow toward the root so "coarser than" is a
plain ``>`` comparison, which the classification rule and the
accuracy evaluation both rely on.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Rank"]


class Rank(IntEnum):
    """Taxonomic ranks, most-specific first."""

    SEQUENCE = 0  # individual reference target (MetaCache's 'sequence' level)
    SUBSPECIES = 1
    SPECIES = 2
    GENUS = 3
    FAMILY = 4
    ORDER = 5
    CLASS = 6
    PHYLUM = 7
    KINGDOM = 8
    DOMAIN = 9
    ROOT = 10

    @classmethod
    def from_name(cls, name: str) -> "Rank":
        """Parse NCBI-style rank strings ('no rank' maps to SEQUENCE)."""
        normalized = name.strip().lower().replace(" ", "_")
        aliases = {
            "superkingdom": "DOMAIN",
            "no_rank": "SEQUENCE",
            "strain": "SUBSPECIES",
        }
        key = aliases.get(normalized, normalized.upper())
        try:
            return cls[key]
        except KeyError:
            raise ValueError(f"unknown rank name: {name!r}") from None

    def ncbi_name(self) -> str:
        """Render as the string NCBI dump files use."""
        if self is Rank.DOMAIN:
            return "superkingdom"
        if self is Rank.SEQUENCE:
            return "no rank"
        return self.name.lower()

    def coarser(self) -> "Rank":
        """The next rank toward the root (ROOT maps to itself)."""
        return Rank(min(self.value + 1, Rank.ROOT.value))
