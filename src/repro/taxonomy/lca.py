"""Constant-time lowest-common-ancestor queries.

Section 4.2: "an acceleration structure is generated from the
taxonomic tree ... allowing to compute the lowest common ancestor of
two taxa in constant time during classification."  The textbook way
to get O(1) LCA is an Euler tour of the tree plus a sparse-table
range-minimum structure over tour depths; that is what we build.

Construction is O(n log n) space/time, each query O(1).  A vectorized
batch query is provided because the classifier resolves LCAs for
whole batches of ambiguous reads at once.
"""

from __future__ import annotations

import numpy as np

from repro.taxonomy.tree import Taxonomy

__all__ = ["LcaIndex"]


class LcaIndex:
    """Euler-tour sparse-table LCA over a :class:`Taxonomy`."""

    def __init__(self, taxonomy: Taxonomy) -> None:
        self.taxonomy = taxonomy
        n = len(taxonomy)
        children = [[] for _ in range(n)]
        for i, p in enumerate(taxonomy.parent_index):
            if i != taxonomy.root_index:
                children[int(p)].append(i)

        # Iterative Euler tour recording (node, depth) at every visit.
        tour_nodes = np.empty(2 * n - 1 if n > 0 else 0, dtype=np.int64)
        tour_depths = np.empty_like(tour_nodes)
        first_visit = np.full(n, -1, dtype=np.int64)
        pos = 0
        # Stack of (node, child cursor, depth)
        stack: list[list[int]] = [[taxonomy.root_index, 0, 0]]
        while stack:
            node, cursor, depth = stack[-1]
            if cursor == 0:
                first_visit[node] = pos
            tour_nodes[pos] = node
            tour_depths[pos] = depth
            pos += 1
            if cursor < len(children[node]):
                stack[-1][1] += 1
                stack.append([children[node][cursor], 0, depth + 1])
            else:
                stack.pop()
        assert pos == tour_nodes.size, "Euler tour length mismatch"
        self._tour_nodes = tour_nodes
        self._first = first_visit

        # Sparse table of argmin over tour depths.
        m = tour_depths.size
        levels = max(1, int(np.floor(np.log2(max(m, 1)))) + 1)
        table = np.empty((levels, m), dtype=np.int64)
        table[0] = np.arange(m)
        depths = tour_depths
        for lvl in range(1, levels):
            span = 1 << lvl
            half = span >> 1
            width = m - span + 1
            if width <= 0:
                table = table[:lvl]
                break
            left = table[lvl - 1, :width]
            right = table[lvl - 1, half : half + width]
            take_right = depths[right] < depths[left]
            table[lvl, :width] = np.where(take_right, right, left)
        self._table = table
        self._depths = depths
        # log2 lookup for O(1) level selection
        self._log2 = np.zeros(m + 1, dtype=np.int64)
        for i in range(2, m + 1):
            self._log2[i] = self._log2[i >> 1] + 1

    def lca(self, a: int, b: int) -> int:
        """LCA of two taxon ids (O(1))."""
        ia = self.taxonomy.index_of(a)
        ib = self.taxonomy.index_of(b)
        return self.taxonomy.id_of(self._lca_dense(ia, ib))

    def _lca_dense(self, ia: int, ib: int) -> int:
        l, r = int(self._first[ia]), int(self._first[ib])
        if l > r:
            l, r = r, l
        lvl = int(self._log2[r - l + 1])
        span = 1 << lvl
        c1 = int(self._table[lvl, l])
        c2 = int(self._table[lvl, r - span + 1])
        best = c2 if self._depths[c2] < self._depths[c1] else c1
        return int(self._tour_nodes[best])

    def lca_batch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized pairwise LCA over arrays of *dense indices*.

        Used by the classifier's batch path; convert ids with
        ``taxonomy.index_of`` first (the classifier keeps everything
        dense internally).
        """
        ia = np.asarray(a, dtype=np.int64)
        ib = np.asarray(b, dtype=np.int64)
        l = self._first[ia]
        r = self._first[ib]
        lo = np.minimum(l, r)
        hi = np.maximum(l, r)
        lvl = self._log2[hi - lo + 1]
        span = (np.int64(1) << lvl).astype(np.int64)
        c1 = self._table[lvl, lo]
        c2 = self._table[lvl, hi - span + 1]
        best = np.where(self._depths[c2] < self._depths[c1], c2, c1)
        return self._tour_nodes[best]

    def lca_of_set(self, taxon_ids: np.ndarray | list[int]) -> int:
        """LCA of a whole set of taxon ids (fold over pairwise LCA)."""
        ids = list(taxon_ids)
        if not ids:
            raise ValueError("lca_of_set of empty set")
        acc = self.taxonomy.index_of(int(ids[0]))
        for t in ids[1:]:
            acc = self._lca_dense(acc, self.taxonomy.index_of(int(t)))
        return self.taxonomy.id_of(acc)
