"""Sorting substrate: bitonic networks, segmented sort, compaction.

Section 5.5: the GPU pipeline sorts the per-read location lists with a
key-only segmented sort modeled on Hou et al. [12] -- multiple kernels,
each tailored to a range of segment sizes, all built on bitonic
sorting networks executed in registers.  Our vectorized analogue bins
segments by size class, lays each bin out as a padded matrix, and runs
the bitonic network across whole matrix columns (one compare-exchange
step = two fancy-indexed vector ops over *all* segments of the bin).

:mod:`repro.sort.compaction` provides the prefix-sum compaction of
Section 5.4 that densifies sparse per-window query results before
sorting.
"""

from repro.sort.bitonic import bitonic_sort_rows, bitonic_compare_exchange_steps
from repro.sort.segmented import (
    segmented_sort,
    segmented_sort_reference,
    segmented_sort_lexsort,
    SegmentedSortPlan,
)
from repro.sort.compaction import compact_rows, read_segment_offsets

__all__ = [
    "bitonic_sort_rows",
    "bitonic_compare_exchange_steps",
    "segmented_sort",
    "segmented_sort_reference",
    "segmented_sort_lexsort",
    "SegmentedSortPlan",
    "compact_rows",
    "read_segment_offsets",
]
