"""Size-binned segmented sort (key-only), after Hou et al. [12].

The location lists produced by database queries vary wildly in length
(most reads hit few locations, some hit thousands -- the skew of
Section 5.5).  Sorting every segment with one generic routine wastes
work; instead segments are binned by size class and each bin is
sorted by a kernel specialized for that class:

- small bins (width <= ``bitonic_threshold``): all segments of the
  bin are packed into one padded matrix and sorted by a *single*
  batched bitonic network -- the vectorized analogue of the
  register/warp-shuffle kernels of the original;
- large segments: per-segment ``np.sort`` (the original dispatches
  these to a global-memory merge sort).

``segmented_sort_reference`` is the obviously-correct comparison
implementation used by property tests and as the ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sort.bitonic import bitonic_sort_rows

__all__ = ["SegmentedSortPlan", "segmented_sort", "segmented_sort_reference"]


@dataclass
class SegmentedSortPlan:
    """Execution plan: which segments land in which size bin.

    Exposed so the Fig. 5 instrumentation and the ablation bench can
    report per-bin work; ``bins`` maps bin width -> segment indices.
    """

    bins: dict[int, np.ndarray] = field(default_factory=dict)
    large: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def n_binned_segments(self) -> int:
        return int(sum(v.size for v in self.bins.values()))


def plan_bins(
    lengths: np.ndarray, bitonic_threshold: int, min_bin_width: int = 32
) -> SegmentedSortPlan:
    """Assign each segment to the smallest power-of-two bin that fits."""
    plan = SegmentedSortPlan()
    if lengths.size == 0:
        return plan
    width = min_bin_width
    assigned = lengths <= 0  # empty segments need no work
    while width <= bitonic_threshold:
        in_bin = (~assigned) & (lengths <= width)
        if in_bin.any():
            plan.bins[width] = np.flatnonzero(in_bin)
            assigned |= in_bin
        width *= 2
    plan.large = np.flatnonzero(~assigned)
    return plan


def segmented_sort(
    values: np.ndarray,
    offsets: np.ndarray,
    bitonic_threshold: int = 1024,
) -> np.ndarray:
    """Sort each segment of ``values`` ascending; returns a new array.

    ``offsets`` has length ``n_segments + 1``; segment ``i`` spans
    ``values[offsets[i]:offsets[i+1]]``.  Stable *within equal keys*
    is not guaranteed (neither is the GPU network sort); the pipeline
    only needs value order.
    """
    v = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    out = v.copy()
    n_seg = offsets.size - 1
    if n_seg <= 0 or v.size == 0:
        return out
    starts = offsets[:-1]
    lengths = np.diff(offsets)
    plan = plan_bins(lengths, bitonic_threshold)
    if np.issubdtype(v.dtype, np.integer):
        pad = np.iinfo(v.dtype).max
    else:
        pad = np.inf
    for width, seg_idx in plan.bins.items():
        s = starts[seg_idx]
        l = lengths[seg_idx]
        cols = np.arange(width, dtype=np.int64)
        gidx = s[:, None] + cols[None, :]
        valid = cols[None, :] < l[:, None]
        gidx_safe = np.where(valid, gidx, 0)
        matrix = np.where(valid, v[gidx_safe], pad)
        sorted_matrix = bitonic_sort_rows(matrix, pad_value=pad)
        out[gidx_safe[valid]] = sorted_matrix[valid]
    for i in plan.large:
        a, b = int(offsets[i]), int(offsets[i + 1])
        out[a:b] = np.sort(v[a:b])
    return out


def segmented_sort_reference(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Reference implementation: independent np.sort per segment."""
    v = np.asarray(values)
    out = v.copy()
    offsets = np.asarray(offsets, dtype=np.int64)
    for i in range(offsets.size - 1):
        a, b = int(offsets[i]), int(offsets[i + 1])
        out[a:b] = np.sort(v[a:b])
    return out


def segmented_sort_lexsort(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Global segmented sort via one ``np.lexsort`` over (segment, value).

    The production CPU-side choice: a single O(n log n) vectorized
    sort, independent of segment-count/size skew.  The bitonic-binned
    :func:`segmented_sort` reproduces the *GPU kernel structure* of
    Hou et al. but pays interpreter overhead per network step, so the
    query pipeline uses this one (the ablation bench quantifies the
    difference; on a real GPU the binned network wins, Section 5.5).
    """
    from repro.util.segmented import segment_ids_from_offsets

    v = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    if v.size == 0:
        return v.copy()
    seg = segment_ids_from_offsets(offsets)
    order = np.lexsort((v, seg))
    return v[order]
