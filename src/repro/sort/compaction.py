"""Prefix-sum compaction of sparse per-window results (Section 5.4).

The query kernel writes each window's location list into a fixed-size
row of a result matrix (rows = windows, width = worst-case capacity).
A prefix sum over per-window counts then drives a gather that packs
the lists densely, and the window->read mapping collapses into read
segment offsets for the segmented sort.
"""

from __future__ import annotations

import numpy as np

from repro.util.scan import exclusive_prefix_sum

__all__ = ["compact_rows", "read_segment_offsets"]


def compact_rows(
    matrix: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pack the first ``counts[i]`` entries of each row densely.

    Returns ``(flat, offsets)`` with ``offsets = exclusive prefix sum
    of counts`` -- row ``i``'s data is ``flat[offsets[i]:offsets[i+1]]``.
    """
    m = np.asarray(matrix)
    counts = np.asarray(counts, dtype=np.int64)
    if m.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if counts.size != m.shape[0]:
        raise ValueError("counts length must equal number of rows")
    if (counts > m.shape[1]).any():
        raise ValueError("count exceeds row width")
    offsets = exclusive_prefix_sum(counts)
    cols = np.arange(m.shape[1], dtype=np.int64)
    take = cols[None, :] < counts[:, None]
    return m[take], offsets


def read_segment_offsets(
    window_read_ids: np.ndarray,
    window_counts: np.ndarray,
    n_reads: int,
) -> np.ndarray:
    """Per-read offsets over the compacted location array.

    The compaction kernel "checks if consecutive windows originate
    from the same read to calculate the segment boundaries needed for
    the sorting step" -- this is that calculation: window location
    counts grouped by read id, returned as an offsets array of length
    ``n_reads + 1`` over the flat compacted values.
    """
    window_read_ids = np.asarray(window_read_ids, dtype=np.int64)
    window_counts = np.asarray(window_counts, dtype=np.int64)
    if window_read_ids.shape != window_counts.shape:
        raise ValueError("window_read_ids and window_counts must match")
    # integer scatter-add (bincount's weights= path sums in float64,
    # losing exactness past 2^53 total locations)
    per_read = np.zeros(n_reads, dtype=np.int64)
    np.add.at(per_read, window_read_ids, window_counts)
    return exclusive_prefix_sum(per_read)
