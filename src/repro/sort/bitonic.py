"""Vectorized bitonic sorting networks.

A bitonic network of width ``n`` (power of two) is a fixed sequence of
compare-exchange steps; because the step sequence is data independent
it vectorizes perfectly: each step becomes a min/max over two fancy-
indexed column views of the whole batch matrix.  This mirrors how the
GPU kernels run the same network in registers across a warp
(Section 5.3 uses it for sketch ordering, Section 5.5 for segment
sorting).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["bitonic_sort_rows", "bitonic_compare_exchange_steps"]


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


def bitonic_compare_exchange_steps(width: int) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield the compare-exchange steps of a bitonic network.

    Each step is ``(left_idx, right_idx, ascending)``: compare element
    pairs (left, right) and place min at left when ascending is True,
    max otherwise.  ``width`` must be a power of two.  Exposed
    separately so the warp-level kernel emulation can replay the very
    same network one step at a time.
    """
    if width & (width - 1):
        raise ValueError(f"width must be a power of two, got {width}")
    idx = np.arange(width)
    k = 2
    while k <= width:
        j = k // 2
        while j >= 1:
            partner = idx ^ j
            mask = partner > idx
            left = idx[mask]
            right = partner[mask]
            ascending = (left & k) == 0
            yield left, right, ascending
            j //= 2
        k *= 2


def bitonic_sort_rows(matrix: np.ndarray, pad_value=None) -> np.ndarray:
    """Sort each row ascending with a batched bitonic network.

    Rows are padded to the next power of two with ``pad_value``
    (default: the dtype maximum) so the pad sorts to the end; the
    returned array has the original width with every row sorted.
    A new array is returned; the input is untouched.
    """
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise ValueError("matrix must be 2-D")
    n_rows, width = m.shape
    if width == 0 or n_rows == 0:
        return m.copy()
    if pad_value is None:
        if np.issubdtype(m.dtype, np.integer):
            pad_value = np.iinfo(m.dtype).max
        else:
            pad_value = np.inf
    padded_width = _next_pow2(width)
    if padded_width != width:
        work = np.full((n_rows, padded_width), pad_value, dtype=m.dtype)
        work[:, :width] = m
    else:
        work = m.copy()
    for left, right, ascending in bitonic_compare_exchange_steps(padded_width):
        a = work[:, left]
        b = work[:, right]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        asc = ascending[None, :]
        work[:, left] = np.where(asc, lo, hi)
        work[:, right] = np.where(asc, hi, lo)
    return work[:, :width]
