"""The reference database: partitioned minhash k-mer index + taxonomy.

A database maps 32-bit sketch features to packed (target, window)
locations through one :class:`repro.warpcore.MultiBucketHashTable`
per *partition*.  Partitions correspond to GPUs (Section 4.3): a
reference sequence (target) is never split across partitions, the
same feature may appear in several partitions, and each partition
enforces the per-feature location cap independently -- which is why
the partitioned GPU database retains more locations per k-mer than
the single CPU table and gains accuracy (Section 6.5).

Two storage layouts exist, as in the paper (Section 5.1):

- the **build layout** -- the multi-bucket table as filled during
  construction; usable for querying immediately (on-the-fly mode);
- the **condensed layout** -- produced by save/load: all location
  buckets concatenated into one dense array with a single-value table
  mapping features to (offset, length) pointers.

``Database.query_features`` hides the difference from the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import MetaCacheParams
from repro.gpu.device import Device
from repro.hashing.minhash import SKETCH_PAD
from repro.hashing.sketch import sketch_sequence
from repro.taxonomy.lca import LcaIndex
from repro.taxonomy.lineage import RankedLineages
from repro.taxonomy.tree import Taxonomy
from repro.util.bitops import pack_pairs
from repro.warpcore.multi_bucket import MultiBucketHashTable
from repro.warpcore.single_value import SingleValueHashTable

__all__ = ["TargetRecord", "DatabasePartition", "CondensedIndex", "Database"]


@dataclass(frozen=True)
class TargetRecord:
    """Metadata of one reference target (a single sequence/scaffold)."""

    target_id: int
    name: str
    taxon_id: int
    length: int
    n_windows: int
    partition_id: int


@dataclass
class CondensedIndex:
    """The load-from-disk layout: dense buckets + pointer table.

    ``locations`` holds every feature's location list contiguously;
    ``pointers`` maps a feature to its packed (offset << 24 | length)
    via a :class:`SingleValueHashTable` (Section 5.1 uses exactly this
    structure on the GPU).
    """

    OFFSET_SHIFT = np.uint64(24)
    LENGTH_MASK = np.uint64((1 << 24) - 1)

    locations: np.ndarray
    pointers: SingleValueHashTable

    @classmethod
    def from_table(cls, table: MultiBucketHashTable) -> "CondensedIndex":
        """Compact a build-layout table into the condensed layout."""
        uniq = table.occupied_keys()
        values, offsets = table.retrieve(uniq)
        lengths = np.diff(offsets).astype(np.uint64)
        if lengths.size and int(lengths.max()) >= (1 << 24):
            raise ValueError("location list too long for condensed pointer")
        packed = (offsets[:-1].astype(np.uint64) << cls.OFFSET_SHIFT) | lengths
        pointers = SingleValueHashTable(capacity_keys=max(16, uniq.size))
        pointers.insert(uniq, packed)
        return cls(locations=values, pointers=pointers)

    def retrieve(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Same contract as ``MultiBucketHashTable.retrieve``."""
        packed, found = self.pointers.retrieve(features)
        lengths = np.where(found, packed & self.LENGTH_MASK, np.uint64(0)).astype(
            np.int64
        )
        starts = (packed >> self.OFFSET_SHIFT).astype(np.int64)
        offsets = np.zeros(features.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        out = np.empty(int(offsets[-1]), dtype=np.uint64)
        # gather each query's slice (vectorized over a range matrix is
        # wasteful for skewed lengths; use repeat-based gather instead)
        if out.size:
            idx = np.repeat(starts, lengths) + _ramp(lengths)
            out[:] = self.locations[idx]
        return out, offsets

    @property
    def nbytes(self) -> int:
        return int(self.locations.nbytes) + self.pointers.stats().bytes_total


def _ramp(lengths: np.ndarray) -> np.ndarray:
    """[0,1,..,l0-1, 0,1,..,l1-1, ...] for the repeat-based gather."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    seg_starts = ends - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(seg_starts, lengths)


@dataclass
class DatabasePartition:
    """One partition: a hash table bound to (at most) one device."""

    partition_id: int
    table: MultiBucketHashTable | None
    condensed: CondensedIndex | None = None
    device: Device | None = None
    allocation_name: str = ""

    def retrieve(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.condensed is not None:
            return self.condensed.retrieve(features)
        if self.table is None:
            raise RuntimeError("partition has neither build nor condensed layout")
        return self.table.retrieve(features)

    @property
    def nbytes(self) -> int:
        if self.condensed is not None:
            return self.condensed.nbytes
        return self.table.stats().bytes_total if self.table else 0

    def condense(self) -> None:
        """Switch to the condensed layout (drops the build table)."""
        if self.condensed is None:
            self.condensed = CondensedIndex.from_table(self.table)
            self.table = None


class Database:
    """A queryable, partitioned MetaCache database."""

    def __init__(
        self,
        params: MetaCacheParams,
        taxonomy: Taxonomy,
        partitions: list[DatabasePartition],
        targets: list[TargetRecord],
    ) -> None:
        self.params = params
        self.taxonomy = taxonomy
        self.partitions = partitions
        self.targets = targets
        self.lineages = RankedLineages(taxonomy)
        self.lca = LcaIndex(taxonomy)

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        references: Iterable[tuple[str, np.ndarray, int]],
        taxonomy: Taxonomy,
        params: MetaCacheParams | None = None,
        n_partitions: int = 1,
        devices: Sequence[Device] | None = None,
        insert_batch_windows: int = 100_000,
    ) -> "Database":
        """Build a database from (name, encoded_sequence, taxon_id) triples.

        Targets are assigned to partitions greedily by accumulated
        length (lightest partition first), never splitting a target.
        When ``devices`` are given, each partition's table allocation
        is charged against its device's memory pool and
        ``OutOfDeviceMemory`` propagates -- callers then retry with
        more partitions, exactly like the real workflow.
        """
        params = params or MetaCacheParams()
        refs = list(references)
        if devices is not None:
            if len(devices) < n_partitions:
                raise ValueError("need at least one device per partition")
        stride = params.window_stride
        s = params.sketch.sketch_size

        # -- partition assignment: greedy by base count
        part_load = np.zeros(n_partitions, dtype=np.int64)
        assignment: list[int] = []
        for _, codes, _ in refs:
            p = int(np.argmin(part_load))
            assignment.append(p)
            part_load[p] += codes.size

        # -- allocate one table per partition, sized by its share
        partitions: list[DatabasePartition] = []
        for p in range(n_partitions):
            bases = int(part_load[p])
            est_windows = max(1, bases // stride + len(refs))
            est_features = est_windows * s
            table = MultiBucketHashTable(
                capacity_values=max(256, est_features),
                bucket_size=params.bucket_size,
                group_size=params.group_size,
                max_load_factor=params.max_load_factor,
                max_locations_per_key=params.max_locations_per_feature,
                expected_unique_keys=max(256, int(est_features * 0.8)),
            )
            device = devices[p] if devices is not None else None
            alloc_name = f"partition{p}/table"
            if device is not None:
                device.memory.alloc(alloc_name, table.stats().bytes_total)
            partitions.append(
                DatabasePartition(
                    partition_id=p,
                    table=table,
                    device=device,
                    allocation_name=alloc_name,
                )
            )

        # -- sketch and insert every target
        targets: list[TargetRecord] = []
        pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {
            p: [] for p in range(n_partitions)
        }
        pending_windows = {p: 0 for p in range(n_partitions)}

        def flush(p: int) -> None:
            if not pending[p]:
                return
            feats = np.concatenate([f for f, _ in pending[p]])
            locs = np.concatenate([l for _, l in pending[p]])
            partitions[p].table.insert(feats, locs)
            pending[p].clear()
            pending_windows[p] = 0

        for t, (name, codes, taxon_id) in enumerate(refs):
            if taxon_id not in taxonomy:
                raise KeyError(f"taxon {taxon_id} of target {name!r} not in taxonomy")
            p = assignment[t]
            sketches = sketch_sequence(codes, params.sketch)
            n_windows = sketches.shape[0]
            targets.append(
                TargetRecord(
                    target_id=t,
                    name=name,
                    taxon_id=taxon_id,
                    length=int(codes.size),
                    n_windows=n_windows,
                    partition_id=p,
                )
            )
            if n_windows:
                window_ids = np.repeat(
                    np.arange(n_windows, dtype=np.uint64), sketches.shape[1]
                )
                feats = sketches.reshape(-1)
                valid = feats != SKETCH_PAD
                locs = pack_pairs(
                    np.full(valid.sum(), t, dtype=np.uint64), window_ids[valid]
                )
                pending[p].append((feats[valid], locs))
                pending_windows[p] += n_windows
                if pending_windows[p] >= insert_batch_windows:
                    flush(p)
        for p in range(n_partitions):
            flush(p)
        return cls(params=params, taxonomy=taxonomy, partitions=partitions, targets=targets)

    # ------------------------------------------------------------------ query

    def query_features(
        self, features: np.ndarray, partition_id: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Location lists for a feature batch against one partition."""
        return self.partitions[partition_id].retrieve(features)

    # -------------------------------------------------------------- metadata

    @property
    def n_targets(self) -> int:
        return len(self.targets)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def total_windows(self) -> int:
        return sum(t.n_windows for t in self.targets)

    @property
    def nbytes(self) -> int:
        """Total index bytes across partitions (the 'DB size' column)."""
        return sum(p.nbytes for p in self.partitions)

    def target_taxa(self) -> np.ndarray:
        """taxon id per target id (dense vector for the classifier)."""
        return np.array([t.taxon_id for t in self.targets], dtype=np.int64)

    def condense(self) -> None:
        """Convert all partitions to the condensed query layout."""
        for p in self.partitions:
            p.condense()

    def release_devices(self) -> None:
        """Free device memory allocations (end of GPU session)."""
        for p in self.partitions:
            if p.device is not None and p.allocation_name:
                try:
                    p.device.memory.free(p.allocation_name)
                except KeyError:
                    pass
            p.device = None
