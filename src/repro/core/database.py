"""The reference database: partitioned minhash k-mer index + taxonomy.

A database maps 32-bit sketch features to packed (target, window)
locations through one :class:`repro.warpcore.MultiBucketHashTable`
per *partition*.  Partitions correspond to GPUs (Section 4.3): a
reference sequence (target) is never split across partitions, the
same feature may appear in several partitions, and each partition
enforces the per-feature location cap independently -- which is why
the partitioned GPU database retains more locations per k-mer than
the single CPU table and gains accuracy (Section 6.5).

Two storage layouts exist, as in the paper (Section 5.1):

- the **build layout** -- the multi-bucket table as filled during
  construction; usable for querying immediately (on-the-fly mode);
- the **condensed layout** -- produced by save/load: all location
  buckets concatenated into one dense array with a single-value table
  mapping features to (offset, length) pointers.

``Database.query_features`` hides the difference from the pipeline.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import MetaCacheParams
from repro.errors import SharedMemoryUnavailableError
from repro.gpu.device import Device
from repro.taxonomy.lca import LcaIndex
from repro.taxonomy.lineage import RankedLineages
from repro.taxonomy.tree import Taxonomy
from repro.warpcore.multi_bucket import MultiBucketHashTable
from repro.warpcore.single_value import SingleValueHashTable

__all__ = [
    "TargetRecord",
    "DatabasePartition",
    "CondensedIndex",
    "Database",
    "SharedArraySpec",
    "SharedPartitionSpec",
    "SharedDatabaseHandle",
    "FileBackedDatabaseHandle",
]


@dataclass(frozen=True)
class TargetRecord:
    """Metadata of one reference target (a single sequence/scaffold)."""

    target_id: int
    name: str
    taxon_id: int
    length: int
    n_windows: int
    partition_id: int


@dataclass
class CondensedIndex:
    """The load-from-disk layout: dense buckets + pointer table.

    ``locations`` holds every feature's location list contiguously;
    ``pointers`` maps a feature to its packed (offset << 24 | length)
    via a :class:`SingleValueHashTable` (Section 5.1 uses exactly this
    structure on the GPU).
    """

    OFFSET_SHIFT = np.uint64(24)
    LENGTH_MASK = np.uint64((1 << 24) - 1)

    locations: np.ndarray
    pointers: SingleValueHashTable

    @classmethod
    def from_table(cls, table: MultiBucketHashTable) -> "CondensedIndex":
        """Compact a build-layout table into the condensed layout."""
        uniq = table.occupied_keys()
        values, offsets = table.retrieve(uniq)
        lengths = np.diff(offsets).astype(np.uint64)
        if lengths.size and int(lengths.max()) >= (1 << 24):
            raise ValueError("location list too long for condensed pointer")
        packed = (offsets[:-1].astype(np.uint64) << cls.OFFSET_SHIFT) | lengths
        pointers = SingleValueHashTable(capacity_keys=max(16, uniq.size))
        pointers.insert(uniq, packed)
        return cls(locations=values, pointers=pointers)

    def retrieve(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Same contract as ``MultiBucketHashTable.retrieve``."""
        packed, found = self.pointers.retrieve(features)
        lengths = np.where(found, packed & self.LENGTH_MASK, np.uint64(0)).astype(
            np.int64
        )
        starts = (packed >> self.OFFSET_SHIFT).astype(np.int64)
        offsets = np.zeros(features.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        out = np.empty(int(offsets[-1]), dtype=np.uint64)
        # gather each query's slice (vectorized over a range matrix is
        # wasteful for skewed lengths; use repeat-based gather instead)
        if out.size:
            idx = np.repeat(starts, lengths) + _ramp(lengths)
            out[:] = self.locations[idx]
        return out, offsets

    @property
    def nbytes(self) -> int:
        return int(self.locations.nbytes) + self.pointers.stats().bytes_total


def _ramp(lengths: np.ndarray) -> np.ndarray:
    """[0,1,..,l0-1, 0,1,..,l1-1, ...] for the repeat-based gather."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    seg_starts = ends - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(seg_starts, lengths)


@dataclass
class DatabasePartition:
    """One partition: a hash table bound to (at most) one device."""

    partition_id: int
    table: MultiBucketHashTable | None
    condensed: CondensedIndex | None = None
    device: Device | None = None
    allocation_name: str = ""

    def retrieve(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.condensed is not None:
            return self.condensed.retrieve(features)
        if self.table is None:
            raise RuntimeError("partition has neither build nor condensed layout")
        return self.table.retrieve(features)

    @property
    def nbytes(self) -> int:
        if self.condensed is not None:
            return self.condensed.nbytes
        return self.table.stats().bytes_total if self.table else 0

    def condense(self) -> None:
        """Switch to the condensed layout (drops the build table)."""
        if self.condensed is None:
            self.condensed = CondensedIndex.from_table(self.table)
            self.table = None


class Database:
    """A queryable, partitioned MetaCache database."""

    def __init__(
        self,
        params: MetaCacheParams,
        taxonomy: Taxonomy,
        partitions: list[DatabasePartition],
        targets: list[TargetRecord],
    ) -> None:
        self.params = params
        self.taxonomy = taxonomy
        self.partitions = partitions
        self.targets = targets
        self.lineages = RankedLineages(taxonomy)
        self.lca = LcaIndex(taxonomy)
        #: on-disk format this database was loaded from (None = built
        #: in memory); set by :func:`repro.core.io.load_database`.
        self.format_version: int | None = None
        #: directory of the mmap-backed (format v2) index, when this
        #: database was opened with ``mmap=True``.  Worker processes
        #: then share the index through the page cache instead of a
        #: shared-memory export (see :meth:`sharing_handle`).
        self.mmap_path = None
        # explicit lifetime state (see retain/release/close): guards
        # the hot-swap protocol where serving batches pin the old
        # index until the last one drains
        self._lifetime_lock = threading.Lock()
        self._retains = 0
        self._close_pending = False
        self._closed = False

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        references: Iterable[tuple[str, np.ndarray, int]],
        taxonomy: Taxonomy,
        params: MetaCacheParams | None = None,
        n_partitions: int = 1,
        devices: Sequence[Device] | None = None,
        insert_batch_windows: int = 100_000,
    ) -> "Database":
        """Build a database from (name, encoded_sequence, taxon_id) triples.

        A thin wrapper over :class:`repro.core.builder.DatabaseBuilder`
        (the streaming build pipeline): ``references`` is consumed
        lazily -- a generator streams through in bounded memory --
        targets are assigned to partitions online-greedily by
        accumulated length (lightest partition first, per arrival),
        never splitting a target.  When ``devices`` are given, each
        partition's table allocation is charged against its device's
        memory pool and ``OutOfDeviceMemory`` propagates -- callers
        then retry with more partitions, exactly like the real
        workflow.  Raises :class:`repro.errors.BuildError` (a
        ``KeyError``) for a taxon id absent from the taxonomy.
        """
        from repro.core.builder import DatabaseBuilder

        builder = DatabaseBuilder(
            taxonomy,
            params,
            n_partitions=n_partitions,
            devices=devices,
            insert_batch_windows=insert_batch_windows,
        )
        for name, codes, taxon_id in references:
            builder.add_reference(name, codes, taxon_id)
        return builder.finalize(condense=False)

    # ------------------------------------------------------------------ query

    def query_features(
        self, features: np.ndarray, partition_id: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Location lists for a feature batch against one partition."""
        return self.partitions[partition_id].retrieve(features)

    # -------------------------------------------------------------- metadata

    @property
    def n_targets(self) -> int:
        return len(self.targets)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def total_windows(self) -> int:
        return sum(t.n_windows for t in self.targets)

    @property
    def nbytes(self) -> int:
        """Total index bytes across partitions (the 'DB size' column)."""
        return sum(p.nbytes for p in self.partitions)

    def target_taxa(self) -> np.ndarray:
        """taxon id per target id (dense vector for the classifier)."""
        return np.array([t.taxon_id for t in self.targets], dtype=np.int64)

    def condense(self) -> None:
        """Convert all partitions to the condensed query layout."""
        for p in self.partitions:
            p.condense()

    def release_devices(self) -> None:
        """Free device memory allocations (end of GPU session)."""
        for p in self.partitions:
            if p.device is not None and p.allocation_name:
                try:
                    p.device.memory.free(p.allocation_name)
                except KeyError:
                    pass
            p.device = None

    # -------------------------------------------------------------- lifetime

    @property
    def closed(self) -> bool:
        """True once the index content has been dropped/unmapped."""
        return self._closed

    def retain(self) -> "Database":
        """Pin this database's index for the duration of one batch.

        The hot-swap half of the lifetime contract: classification
        paths bracket each batch with ``retain()`` / ``release()``, so
        a concurrent :meth:`close` (issued right after a session swaps
        to a new index) defers the actual unmap until the last
        in-flight batch drains.  Raises ``RuntimeError`` when the
        database is already closed or closing -- a retained reference
        can never observe unmapped memory.
        """
        with self._lifetime_lock:
            if self._closed or self._close_pending:
                raise RuntimeError("cannot retain a closed database")
            self._retains += 1
        return self

    def release(self) -> None:
        """Drop one :meth:`retain` pin; runs a deferred close at zero."""
        run_close = False
        with self._lifetime_lock:
            if self._retains <= 0:
                raise RuntimeError("release() without a matching retain()")
            self._retains -= 1
            if self._retains == 0 and self._close_pending and not self._closed:
                self._closed = True
                run_close = True
        if run_close:
            self._close_now()

    def close(self) -> None:
        """Release the index deterministically (idempotent).

        Drops every partition's arrays and -- for databases opened
        with ``mmap=True`` -- explicitly closes the underlying memory
        maps, returning their file descriptors to the OS *now* rather
        than at garbage collection (repeated open/close cycles must
        not grow the process fd count).  If batches are still pinned
        via :meth:`retain`, the unmap is deferred until the last
        :meth:`release`; new :meth:`retain` calls are refused either
        way.  Callers holding direct references into the index arrays
        (outside the retain protocol) must not use them after close.
        Metadata (params, taxonomy, targets) stays readable.
        """
        with self._lifetime_lock:
            if self._closed:
                return
            self._close_pending = True
            if self._retains > 0:
                return
            self._closed = True
        self._close_now()

    def _close_now(self) -> None:
        """Drop index content and unmap mmap-backed arrays."""
        self.release_devices()

        def strip(p: DatabasePartition) -> "list[object]":
            # collect the backing mmap objects while dropping every
            # array reference, so no dangling view outlives the close
            found: list[object] = []
            if p.condensed is not None:
                cond = p.condensed
                for array in (
                    cond.locations,
                    getattr(cond.pointers, "_keys", None),
                    getattr(cond.pointers, "_values", None),
                ):
                    mm = getattr(array, "_mmap", None)
                    if mm is not None:
                        found.append(mm)
            p.condensed = None
            p.table = None
            return found

        mmaps = {id(mm): mm for p in self.partitions for mm in strip(p)}
        for mm in mmaps.values():
            try:
                mm.close()
            except (BufferError, ValueError, OSError):  # pragma: no cover
                pass

    def to_shared(self) -> "SharedDatabaseHandle":
        """Export this database into shared memory (see the handle docs)."""
        return SharedDatabaseHandle.export(self)

    def sharing_handle(self):
        """The cheapest handle worker processes can attach this database by.

        A database opened from a format-v2 directory with ``mmap=True``
        is shared through the page cache: the returned
        :class:`FileBackedDatabaseHandle` pickles as just the directory
        path and each worker memory-maps the same ``.npy`` files, so no
        second copy of the index ever exists.  Any other database falls
        back to the one-time shared-memory export
        (:meth:`SharedDatabaseHandle.export`).
        """
        if self.mmap_path is not None:
            return FileBackedDatabaseHandle(self.mmap_path)
        return SharedDatabaseHandle.export(self)


# ---------------------------------------------------------------------------
# zero-copy shared-memory export (the multi-process query engine substrate)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedArraySpec:
    """Recipe to re-materialize one numpy array from a shared block.

    The spec is what travels between processes (a few dozen bytes);
    the array payload itself lives in the named
    :class:`multiprocessing.shared_memory.SharedMemory` block and is
    mapped, never copied, by :meth:`SharedDatabaseHandle.attach`.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (0 for empty arrays; blocks are >= 1)."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SharedPartitionSpec:
    """One partition's condensed layout, described as shared blocks.

    ``pointer_keys`` / ``pointer_values`` are the raw slot arrays of
    the feature -> (offset, length) single-value table;
    ``n_groups`` / ``group_size`` / ``max_probe_rounds`` / ``size``
    reconstruct the exact probing scheme, so attached workers probe
    bit-identically to the exporting process.
    """

    locations: SharedArraySpec
    pointer_keys: SharedArraySpec
    pointer_values: SharedArraySpec
    n_groups: int
    group_size: int
    max_probe_rounds: int
    size: int
    dropped: int


class SharedDatabaseHandle:
    """Zero-copy export of a :class:`Database` for worker processes.

    The paper's query pipeline keeps one database resident per device
    and fans read batches out to it; the multi-process engine
    (:mod:`repro.parallel`) does the same on the host: the loaded
    database's numpy arrays — condensed location lists, pointer-table
    slots, and target metadata — are copied **once** into named
    ``multiprocessing.shared_memory`` blocks, and every worker maps
    those blocks read-only at attach time.  N workers therefore share
    one physical copy of the index; per-worker memory is just the read
    batches in flight.

    Lifetime protocol (explicit, no pickled arrays anywhere):

    - ``SharedDatabaseHandle.export(db)`` (owner) creates the blocks;
    - the handle itself pickles cheaply (specs + params + taxonomy) to
      worker processes, e.g. as a ``Process`` argument;
    - ``handle.attach()`` (any process) maps the blocks and returns a
      fully functional read-only :class:`Database`;
    - ``handle.close()`` (every process) drops the attached database
      and unmaps the blocks — safe to call repeatedly;
    - ``handle.unlink()`` (owner, once, after workers exited or at
      least attached) frees the backing memory.

    The handle is a context manager: ``with Database.to_shared() as
    handle: ...`` closes *and* unlinks on exit when owning.
    """

    def __init__(
        self,
        params: MetaCacheParams,
        taxonomy: Taxonomy,
        target_meta: SharedArraySpec,
        target_name_bytes: SharedArraySpec,
        partitions: list[SharedPartitionSpec],
    ) -> None:
        self.params = params
        self.taxonomy = taxonomy
        self.target_meta = target_meta
        self.target_name_bytes = target_name_bytes
        self.partitions = partitions
        self._blocks: dict[str, object] = {}  # name -> SharedMemory (this process)
        self._owner = False
        self._unlinked = False
        self._database: Database | None = None

    # ------------------------------------------------------------ pickling

    def __getstate__(self) -> dict:
        """Pickle only the specs — never open blocks or mapped arrays."""
        state = self.__dict__.copy()
        state["_blocks"] = {}
        state["_owner"] = False
        state["_database"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------- export

    @classmethod
    def export(cls, db: Database) -> "SharedDatabaseHandle":
        """Copy a database's arrays into fresh shared-memory blocks.

        The database is condensed first (the condensed layout is the
        query layout and the only one made of flat arrays); build-mode
        databases therefore lose their insert capability, exactly as
        they do on save.

        Raises
        ------
        SharedMemoryUnavailableError
            when the platform refuses to create shared memory (no
            ``/dev/shm``, permissions, seccomp, ...).  Callers that can
            degrade catch this and classify single-process instead.
        """
        db.condense()
        prefix = f"mcdb-{secrets.token_hex(4)}"
        handle: SharedDatabaseHandle | None = None
        blocks: dict[str, object] = {}
        try:
            def put(tag: str, array: np.ndarray) -> SharedArraySpec:
                spec, block = _create_block(f"{prefix}-{tag}", array)
                blocks[spec.name] = block
                return spec

            n = len(db.targets)
            meta = np.empty((n, 4), dtype=np.int64)
            for i, t in enumerate(db.targets):
                meta[i] = (t.taxon_id, t.length, t.n_windows, t.partition_id)
            name_blob = "\x00".join(t.name for t in db.targets).encode("utf-8")
            name_bytes = np.frombuffer(name_blob, dtype=np.uint8).copy()

            part_specs: list[SharedPartitionSpec] = []
            for p in db.partitions:
                cond = p.condensed
                assert cond is not None  # condense() above guarantees it
                probing = cond.pointers.probing
                part_specs.append(
                    SharedPartitionSpec(
                        locations=put(f"p{p.partition_id}-loc", cond.locations),
                        pointer_keys=put(f"p{p.partition_id}-keys", cond.pointers._keys),
                        pointer_values=put(
                            f"p{p.partition_id}-vals", cond.pointers._values
                        ),
                        n_groups=probing.n_groups,
                        group_size=probing.group_size,
                        max_probe_rounds=probing.max_probe_rounds,
                        size=len(cond.pointers),
                        dropped=cond.pointers._dropped,
                    )
                )
            handle = cls(
                params=db.params,
                taxonomy=db.taxonomy,
                target_meta=put("tmeta", meta),
                target_name_bytes=put("tnames", name_bytes),
                partitions=part_specs,
            )
            handle._blocks = blocks
            handle._owner = True
            return handle
        except BaseException as exc:
            # never leak partially created blocks, whatever went wrong
            # (MemoryError mid-copy, KeyboardInterrupt, ...): named shm
            # segments outlive this call unless explicitly unlinked
            for block in blocks.values():
                try:
                    block.close()
                    block.unlink()
                except OSError:
                    pass
            if isinstance(exc, (OSError, PermissionError)):
                raise SharedMemoryUnavailableError(
                    f"cannot create shared memory for database export: {exc}"
                ) from exc
            raise

    # ------------------------------------------------------------- attach

    def attach(self) -> Database:
        """Map the shared blocks and return a read-only database view.

        Idempotent per process: repeated calls return the same
        :class:`Database`.  In non-owner (worker) processes the mapped
        blocks are deregistered from the multiprocessing resource
        tracker so a worker's exit can never reap blocks the owner is
        still serving from.

        Raises
        ------
        SharedMemoryUnavailableError
            when a named block no longer exists (the owner unlinked
            too early) or cannot be mapped.
        """
        if self._database is not None:
            return self._database
        try:
            targets = self._attach_targets()
            partitions = [
                self._attach_partition(i, spec)
                for i, spec in enumerate(self.partitions)
            ]
        except (OSError, PermissionError, FileNotFoundError) as exc:
            raise SharedMemoryUnavailableError(
                f"cannot attach shared database blocks: {exc}"
            ) from exc
        self._database = Database(
            params=self.params,
            taxonomy=self.taxonomy,
            partitions=partitions,
            targets=targets,
        )
        return self._database

    @property
    def database(self) -> Database:
        """The attached database (attaching on first access)."""
        return self.attach()

    def _map(self, spec: SharedArraySpec, *, writeable: bool = False) -> np.ndarray:
        """Map one spec to a numpy view over its shared block."""
        block = self._blocks.get(spec.name)
        if block is None:
            block = _open_block(spec.name, owner=self._owner)
            self._blocks[spec.name] = block
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=block.buf)
        view.flags.writeable = writeable
        return view

    def _attach_targets(self) -> list[TargetRecord]:
        meta = self._map(self.target_meta)
        blob = bytes(self._map(self.target_name_bytes))
        names = blob.decode("utf-8").split("\x00") if meta.shape[0] else []
        if len(names) != meta.shape[0]:
            raise SharedMemoryUnavailableError(
                f"target name blob has {len(names)} names for {meta.shape[0]} targets"
            )
        return [
            TargetRecord(
                target_id=i,
                name=names[i],
                taxon_id=int(meta[i, 0]),
                length=int(meta[i, 1]),
                n_windows=int(meta[i, 2]),
                partition_id=int(meta[i, 3]),
            )
            for i in range(meta.shape[0])
        ]

    def _attach_partition(
        self, partition_id: int, spec: SharedPartitionSpec
    ) -> DatabasePartition:
        from repro.warpcore.probing import ProbingScheme

        probing = ProbingScheme(
            n_groups=spec.n_groups,
            group_size=spec.group_size,
            max_probe_rounds=spec.max_probe_rounds,
        )
        pointers = SingleValueHashTable.from_arrays(
            keys=self._map(spec.pointer_keys),
            values=self._map(spec.pointer_values),
            probing=probing,
            size=spec.size,
            dropped=spec.dropped,
        )
        condensed = CondensedIndex(
            locations=self._map(spec.locations), pointers=pointers
        )
        return DatabasePartition(
            partition_id=partition_id, table=None, condensed=condensed
        )

    # ------------------------------------------------------------ lifetime

    @property
    def block_names(self) -> list[str]:
        """Names of every shared block backing this handle."""
        names = [self.target_meta.name, self.target_name_bytes.name]
        for p in self.partitions:
            names += [p.locations.name, p.pointer_keys.name, p.pointer_values.name]
        return names

    @property
    def nbytes(self) -> int:
        """Total payload bytes shared across processes (one copy)."""
        specs = [self.target_meta, self.target_name_bytes]
        for p in self.partitions:
            specs += [p.locations, p.pointer_keys, p.pointer_values]
        return sum(s.nbytes for s in specs)

    def close(self) -> None:
        """Drop the attached database and unmap blocks (idempotent).

        Any live numpy views handed out via :meth:`attach` keep their
        block's mapping alive until they are garbage collected — close
        never invalidates memory behind a caller's back, it only
        releases this handle's references.
        """
        self._database = None
        blocks, self._blocks = self._blocks, {}
        for block in blocks.values():
            try:
                block.close()
            except BufferError:
                # a caller still holds a view into this block; the
                # mapping dies with that view instead of with us
                pass

    def unlink(self) -> None:
        """Free the backing shared memory (owner only; idempotent).

        After unlink, processes already attached keep working (POSIX
        semantics) but new :meth:`attach` calls fail.  Called
        automatically by ``__exit__`` in the owning process.
        """
        if self._unlinked:
            return
        self._unlinked = True
        from multiprocessing import shared_memory

        for name in self.block_names:
            block = self._blocks.get(name)
            try:
                if block is None:
                    block = shared_memory.SharedMemory(name=name)
                block.unlink()
            except (FileNotFoundError, OSError):
                pass

    def __enter__(self) -> "SharedDatabaseHandle":
        return self

    def __exit__(self, *exc) -> None:
        owner = self._owner
        self.close()
        if owner:
            self.unlink()

    def __repr__(self) -> str:
        state = "attached" if self._database is not None else "detached"
        return (
            f"SharedDatabaseHandle({len(self.partitions)} partition(s), "
            f"{self.nbytes:,} shared bytes, {state})"
        )


def _create_block(name: str, array: np.ndarray) -> tuple[SharedArraySpec, object]:
    """Create one shared block and copy ``array`` into it."""
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    block = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, array.nbytes)
    )
    spec = SharedArraySpec(name=name, shape=array.shape, dtype=array.dtype.str)
    if array.nbytes:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        del view
    return spec, block


class FileBackedDatabaseHandle:
    """Zero-copy handle over a saved format-v2 database directory.

    The file-backed sibling of :class:`SharedDatabaseHandle` for
    databases opened with ``mmap=True``: its pickled state is **just
    the directory path** (a few dozen bytes), and :meth:`attach`
    memory-maps the directory's aligned ``.npy`` index files via
    :func:`repro.core.io.load_database`.  Every process attaching the
    same directory shares one physical copy of the index through the
    operating system's page cache -- no shared-memory export, no
    resource-tracker lifetime protocol, and nothing to free:
    :meth:`unlink` is a no-op because the backing files belong to the
    saved database, not to this handle.

    The lifecycle API mirrors :class:`SharedDatabaseHandle` so the
    multi-process engine (:mod:`repro.parallel`) can drive either
    handle interchangeably.
    """

    def __init__(self, directory) -> None:
        self.directory = str(directory)
        self._database: Database | None = None

    def __getstate__(self) -> dict:
        """Pickle only the path -- never the mapped database."""
        return {"directory": self.directory}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._database = None

    def attach(self) -> Database:
        """Memory-map the database directory (idempotent per handle)."""
        if self._database is None:
            from repro.core.io import load_database

            self._database = load_database(self.directory, mmap=True)
        return self._database

    @property
    def database(self) -> Database:
        """The attached database (attaching on first access)."""
        return self.attach()

    def close(self) -> None:
        """Close the attached database, if any (idempotent).

        Unlike the shared-memory handle, the mapped files are this
        process's own fds, so close releases them deterministically
        via :meth:`Database.close` instead of waiting for garbage
        collection.
        """
        db, self._database = self._database, None
        if db is not None:
            db.close()

    def unlink(self) -> None:
        """No-op: the backing files belong to the database directory."""

    def __enter__(self) -> "FileBackedDatabaseHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "attached" if self._database is not None else "detached"
        return f"FileBackedDatabaseHandle({self.directory!r}, {state})"


def _open_block(name: str, *, owner: bool) -> object:
    """Open an existing shared block by name.

    Non-owner processes deregister the block from the multiprocessing
    resource tracker: the tracker would otherwise unlink blocks it saw
    in *any* process at interpreter shutdown, destroying segments the
    owner still serves (the owner alone is responsible for unlinking).
    """
    from multiprocessing import shared_memory

    block = shared_memory.SharedMemory(name=name)
    if not owner:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(f"/{name}", "shared_memory")
        except (ImportError, KeyError, ValueError):  # pragma: no cover
            pass
    return block
