"""Abundance estimation (the KAL_D food-matrix experiment, Section 6.5).

MetaCache's abundance estimator aggregates classified reads per taxon
at a chosen rank and normalizes.  The paper scores it against the
known meat ratios of the KAL_D sausage sample with two metrics:

- **accumulated deviation**: sum over true taxa of the absolute
  difference between estimated and true fractions (paper: 6.5% GPU,
  16.0% CPU, 21.4% Kraken2);
- **false positives**: estimated mass assigned to taxa not in the
  sample at all (paper: 2.5% / 2.0% / 7.5%).
"""

from __future__ import annotations

import numpy as np

from repro.core.classify import UNCLASSIFIED, Classification
from repro.taxonomy.lineage import RankedLineages
from repro.taxonomy.ranks import Rank
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "estimate_abundances",
    "estimate_abundances_from_counts",
    "abundance_deviation",
]


def estimate_abundances(
    taxonomy: Taxonomy,
    classification: Classification,
    rank: Rank = Rank.SPECIES,
) -> dict[int, float]:
    """Relative abundance per taxon at ``rank`` from classified reads.

    Reads that do not resolve to ``rank`` (unclassified, or assigned
    to a coarser LCA) are excluded from the denominator, matching
    MetaCache's estimator.  Returns taxon id -> fraction (sums to 1
    unless nothing resolved).
    """
    predicted = classification.taxon
    classified = predicted != UNCLASSIFIED
    if not classified.any():
        return {}
    taxa, counts = np.unique(predicted[classified], return_counts=True)
    return estimate_abundances_from_counts(
        taxonomy, dict(zip(taxa.tolist(), counts.tolist())), rank
    )


def estimate_abundances_from_counts(
    taxonomy: Taxonomy,
    taxon_counts: dict[int, int],
    rank: Rank = Rank.SPECIES,
) -> dict[int, float]:
    """Abundances from per-taxon read counts instead of a full array.

    Streaming callers (``QuerySession.classify_files`` & friends)
    accumulate only a taxon -> count mapping per batch; this turns
    those counts into the same estimate :func:`estimate_abundances`
    would produce from the concatenated classification.
    """
    items = [
        (int(t), int(c)) for t, c in taxon_counts.items()
        if int(t) != UNCLASSIFIED and int(c) > 0
    ]
    if not items:
        return {}
    lineages = RankedLineages(taxonomy)
    dense = np.array([taxonomy.index_of(t) for t, _ in items], dtype=np.int64)
    weights = np.array([c for _, c in items], dtype=np.int64)
    at_rank = lineages.ancestors_at_rank(dense, rank)
    resolved = at_rank != RankedLineages.NO_TAXON
    if not resolved.any():
        return {}
    at_rank, weights = at_rank[resolved], weights[resolved]
    totals: dict[int, int] = {}
    for t, w in zip(at_rank.tolist(), weights.tolist()):
        totals[t] = totals.get(t, 0) + w
    grand = sum(totals.values())
    return {t: c / grand for t, c in totals.items()}


def abundance_deviation(
    estimated: dict[int, float], truth: dict[int, float]
) -> tuple[float, float]:
    """(accumulated deviation over true taxa, false-positive mass).

    Both in [0, ~2] fraction units; multiply by 100 for the paper's
    percentage presentation.
    """
    deviation = sum(
        abs(estimated.get(taxon, 0.0) - frac) for taxon, frac in truth.items()
    )
    false_positive = sum(
        frac for taxon, frac in estimated.items() if taxon not in truth
    )
    return deviation, false_positive
