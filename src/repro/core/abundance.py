"""Abundance estimation (the KAL_D food-matrix experiment, Section 6.5).

MetaCache's abundance estimator aggregates classified reads per taxon
at a chosen rank and normalizes.  The paper scores it against the
known meat ratios of the KAL_D sausage sample with two metrics:

- **accumulated deviation**: sum over true taxa of the absolute
  difference between estimated and true fractions (paper: 6.5% GPU,
  16.0% CPU, 21.4% Kraken2);
- **false positives**: estimated mass assigned to taxa not in the
  sample at all (paper: 2.5% / 2.0% / 7.5%).
"""

from __future__ import annotations

import numpy as np

from repro.core.classify import UNCLASSIFIED, Classification
from repro.taxonomy.lineage import RankedLineages
from repro.taxonomy.ranks import Rank
from repro.taxonomy.tree import Taxonomy

__all__ = ["estimate_abundances", "abundance_deviation"]


def estimate_abundances(
    taxonomy: Taxonomy,
    classification: Classification,
    rank: Rank = Rank.SPECIES,
) -> dict[int, float]:
    """Relative abundance per taxon at ``rank`` from classified reads.

    Reads that do not resolve to ``rank`` (unclassified, or assigned
    to a coarser LCA) are excluded from the denominator, matching
    MetaCache's estimator.  Returns taxon id -> fraction (sums to 1
    unless nothing resolved).
    """
    lineages = RankedLineages(taxonomy)
    predicted = classification.taxon
    classified = predicted != UNCLASSIFIED
    if not classified.any():
        return {}
    dense = np.array(
        [taxonomy.index_of(int(t)) for t in predicted[classified]], dtype=np.int64
    )
    at_rank = lineages.ancestors_at_rank(dense, rank)
    at_rank = at_rank[at_rank != RankedLineages.NO_TAXON]
    if at_rank.size == 0:
        return {}
    taxa, counts = np.unique(at_rank, return_counts=True)
    total = counts.sum()
    return {int(t): float(c) / float(total) for t, c in zip(taxa, counts)}


def abundance_deviation(
    estimated: dict[int, float], truth: dict[int, float]
) -> tuple[float, float]:
    """(accumulated deviation over true taxa, false-positive mass).

    Both in [0, ~2] fraction units; multiply by 100 for the paper's
    percentage presentation.
    """
    deviation = sum(
        abs(estimated.get(taxon, 0.0) - frac) for taxon, frac in truth.items()
    )
    false_positive = sum(
        frac for taxon, frac in estimated.items() if taxon not in truth
    )
    return deviation, false_positive
