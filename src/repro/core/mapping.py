"""Read mapping on top of the k-mer index (the paper's extension).

Section 6.2: "MetaCache is able to map reads to the most likely
locations of origin within reference sequences and thus produce
candidate regions for further downstream analysis like, e.g.,
alignments"; the conclusion proposes extending the index to read
mapping outright.  This module implements that extension: the top
candidate's window range converts to a base-coordinate interval on
the reference target, optionally refined by counting exact k-mer
matches of the read against the candidate region (a seed-verification
step, the "seed" half of seed-and-extend).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MetaCacheParams
from repro.core.database import Database
from repro.core.query import query_database
from repro.genomics.kmers import valid_canonical_kmers

__all__ = ["ReadMapping", "map_reads", "refine_mapping"]


@dataclass
class ReadMapping:
    """Per-read mapping output (-1 target = unmapped).

    ``ref_begin``/``ref_end`` delimit the candidate region in base
    coordinates on the target sequence; the true read origin lies
    within it for correctly mapped reads (the interval spans the
    top-scoring window range, so it is window-granular, not
    base-exact -- downstream alignment refines it).
    """

    target: np.ndarray  # int64, -1 for unmapped
    ref_begin: np.ndarray  # int64 base offset
    ref_end: np.ndarray  # int64 base offset (exclusive)
    score: np.ndarray  # int64 sketch-hit score

    @property
    def mapped_mask(self) -> np.ndarray:
        return self.target >= 0

    @property
    def n_mapped(self) -> int:
        return int(self.mapped_mask.sum())


def map_reads(
    db: Database,
    sequences: list[np.ndarray],
    mates: list[np.ndarray] | None = None,
    params: MetaCacheParams | None = None,
    min_hits: int | None = None,
) -> ReadMapping:
    """Map reads to candidate regions of their best-matching target."""
    params = params or db.params
    if min_hits is None:
        min_hits = params.classification.min_hits
    result = query_database(db, sequences, mates=mates, params=params)
    cands = result.candidates
    n = cands.n_reads
    stride = params.window_stride
    w = params.sketch.window_size

    target = np.full(n, -1, dtype=np.int64)
    begin = np.zeros(n, dtype=np.int64)
    end = np.zeros(n, dtype=np.int64)
    score = np.zeros(n, dtype=np.int64)
    ok = cands.valid[:, 0] & (cands.score[:, 0] >= min_hits)
    idx = np.flatnonzero(ok)
    if idx.size:
        target[idx] = cands.target[idx, 0]
        begin[idx] = cands.window_first[idx, 0].astype(np.int64) * stride
        end[idx] = cands.window_last[idx, 0].astype(np.int64) * stride + w
        score[idx] = cands.score[idx, 0]
        # clip to the target length
        lengths = np.array([t.length for t in db.targets], dtype=np.int64)
        end[idx] = np.minimum(end[idx], lengths[target[idx]])
    return ReadMapping(target=target, ref_begin=begin, ref_end=end, score=score)


def refine_mapping(
    db_reference: np.ndarray,
    read: np.ndarray,
    region_begin: int,
    region_end: int,
    k: int = 16,
) -> tuple[int, float]:
    """Seed verification within a candidate region.

    Counts the read's canonical k-mers occurring in the region and
    returns ``(best_offset, kmer_identity)`` where ``best_offset`` is
    the region-relative position maximizing seed agreement (computed
    by diagonal voting, the standard seed-chaining shortcut) and
    ``kmer_identity`` the fraction of read k-mers found there.
    """
    region = db_reference[region_begin:region_end]
    read_kmers = valid_canonical_kmers(read, k)
    region_kmers = valid_canonical_kmers(region, k)
    if read_kmers.size == 0 or region_kmers.size == 0:
        return 0, 0.0
    order = np.argsort(region_kmers, kind="stable")
    sorted_region = region_kmers[order]
    pos = np.searchsorted(sorted_region, read_kmers)
    pos = np.minimum(pos, sorted_region.size - 1)
    hit = sorted_region[pos] == read_kmers
    if not hit.any():
        return 0, 0.0
    # diagonal voting: region_pos - read_pos concentrates at the true
    # offset for a correct mapping
    read_positions = np.flatnonzero(hit)
    region_positions = order[pos[hit]]
    diagonals = region_positions - read_positions
    values, counts = np.unique(diagonals, return_counts=True)
    best = int(values[np.argmax(counts)])
    identity = float(counts.max()) / read_kmers.size
    return best, identity
