"""Accuracy evaluation: precision and sensitivity per rank (Table 6).

Definitions follow the MetaCache/Kraken benchmark convention the
paper uses:

- a read counts as *classified at rank r* when its predicted taxon
  resolves to some taxon at rank r (i.e., the prediction is at least
  as specific as r);
- **sensitivity** at r = correctly classified at r / all reads;
- **precision** at r = correctly classified at r / classified at r.

A read classified only to a coarser rank (e.g. genus when evaluating
species) is neither correct nor a false positive at r -- it lowers
sensitivity but not precision, which is exactly why Table 6 can show
99% genus precision alongside ~60% species sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import UNCLASSIFIED, Classification
from repro.taxonomy.lineage import RankedLineages
from repro.taxonomy.ranks import Rank
from repro.taxonomy.tree import Taxonomy

__all__ = ["RankAccuracy", "AccuracyReport", "evaluate_accuracy"]


@dataclass(frozen=True)
class RankAccuracy:
    """Precision/sensitivity at one rank."""

    rank: Rank
    n_reads: int
    n_classified_at_rank: int
    n_correct: int

    @property
    def precision(self) -> float:
        if self.n_classified_at_rank == 0:
            return float("nan")
        return self.n_correct / self.n_classified_at_rank

    @property
    def sensitivity(self) -> float:
        if self.n_reads == 0:
            return float("nan")
        return self.n_correct / self.n_reads


@dataclass(frozen=True)
class AccuracyReport:
    """Accuracy at species and genus level (the Table 6 columns)."""

    species: RankAccuracy
    genus: RankAccuracy

    def row(self) -> dict[str, float]:
        """Formatted like one row of Table 6."""
        return {
            "species_precision": self.species.precision,
            "species_sensitivity": self.species.sensitivity,
            "genus_precision": self.genus.precision,
            "genus_sensitivity": self.genus.sensitivity,
        }


def _rank_accuracy(
    taxonomy: Taxonomy,
    lineages: RankedLineages,
    predicted: np.ndarray,
    truth_at_rank: np.ndarray,
    rank: Rank,
) -> RankAccuracy:
    n = predicted.size
    classified = predicted != UNCLASSIFIED
    pred_at_rank = np.zeros(n, dtype=np.int64)
    if classified.any():
        dense = np.array(
            [taxonomy.index_of(int(t)) for t in predicted[classified]],
            dtype=np.int64,
        )
        pred_at_rank[classified] = lineages.ancestors_at_rank(dense, rank)
    at_rank = pred_at_rank != RankedLineages.NO_TAXON
    correct = at_rank & (pred_at_rank == truth_at_rank)
    return RankAccuracy(
        rank=rank,
        n_reads=n,
        n_classified_at_rank=int(at_rank.sum()),
        n_correct=int(correct.sum()),
    )


def evaluate_accuracy(
    taxonomy: Taxonomy,
    classification: Classification,
    true_species_taxa: np.ndarray,
    true_genus_taxa: np.ndarray,
) -> AccuracyReport:
    """Score a classification run against per-read ground truth.

    ``true_species_taxa`` / ``true_genus_taxa`` hold the correct taxon
    id at each rank per read (the simulators provide them exactly).
    """
    lineages = RankedLineages(taxonomy)
    predicted = classification.taxon
    if predicted.size != np.asarray(true_species_taxa).size:
        raise ValueError("prediction/truth length mismatch")
    return AccuracyReport(
        species=_rank_accuracy(
            taxonomy, lineages, predicted,
            np.asarray(true_species_taxa, dtype=np.int64), Rank.SPECIES,
        ),
        genus=_rank_accuracy(
            taxonomy, lineages, predicted,
            np.asarray(true_genus_taxa, dtype=np.int64), Rank.GENUS,
        ),
    )
