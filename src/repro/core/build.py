"""File-based database construction through the threaded pipeline.

The in-memory :meth:`Database.build` is the core; this module adds the
paper's operational entry point (Fig. 2 left half): producer threads
parse reference FASTA files while the consumer assembles the build,
resolving each sequence header to its taxon through an
accession -> taxon mapping (the role NCBI's ``accession2taxid`` files
play for real MetaCache).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.core.config import MetaCacheParams
from repro.core.database import Database
from repro.gpu.device import Device
from repro.pipeline.producer import fasta_producer
from repro.pipeline.queues import ClosableQueue
from repro.pipeline.scheduler import run_producer_consumer
from repro.taxonomy.tree import Taxonomy

__all__ = ["build_from_fasta", "accession_of"]


def accession_of(header: str) -> str:
    """Accession = first token of the header, scaffold suffix stripped.

    ``SYN_001_002.3 some description`` -> ``SYN_001_002`` (every
    scaffold of an assembly maps to the same taxon, as with NCBI
    assembly accessions).
    """
    token = header.split()[0] if header.split() else ""
    if "." in token:
        base, _, suffix = token.rpartition(".")
        if suffix.isdigit():
            return base
    return token


def build_from_fasta(
    paths: Sequence[str | os.PathLike],
    taxonomy: Taxonomy,
    accession_to_taxon: dict[str, int],
    params: MetaCacheParams | None = None,
    n_partitions: int = 1,
    devices: Sequence[Device] | None = None,
    batch_size: int = 32,
) -> Database:
    """Build a database from reference FASTA files.

    Producer threads parse the files concurrently (one per file, like
    MetaCache's producers); the consumer collects the encoded
    sequences in input order and runs the partitioned build.  Headers
    whose accession is missing from ``accession_to_taxon`` raise
    ``KeyError`` -- silently dropping references would corrupt every
    downstream accuracy number.
    """
    params = params or MetaCacheParams()

    def consume(q: ClosableQueue):
        collected: list[tuple[int, str, object]] = []
        for batch in q:
            for header, codes, seq_id in zip(
                batch.headers, batch.sequences, batch.ids
            ):
                collected.append((seq_id, header, codes))
        return collected

    # Each file's producer numbers its sequences in a disjoint id
    # range so the global order is deterministic (file order, then
    # in-file order) no matter how threads interleave.
    _FILE_STRIDE = 1 << 40
    producers = [
        (
            lambda q, p=path, off=i * _FILE_STRIDE: fasta_producer(
                [p], q, batch_size=batch_size, id_offset=off
            )
        )
        for i, path in enumerate(paths)
    ]
    results = run_producer_consumer(producers=producers, consumers=[consume])
    collected = sorted(results[0], key=lambda item: item[0])
    references = []
    for _, header, codes in collected:
        acc = accession_of(header)
        if acc not in accession_to_taxon:
            raise KeyError(f"accession {acc!r} not in accession_to_taxon mapping")
        references.append((header, codes, accession_to_taxon[acc]))
    return Database.build(
        references,
        taxonomy,
        params=params,
        n_partitions=n_partitions,
        devices=devices,
    )
