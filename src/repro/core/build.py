"""File-based database construction (legacy entry point).

Historically this module owned the threaded one-shot build; the
pipeline now lives in :class:`repro.core.builder.DatabaseBuilder`,
which streams FASTA files in bounded memory, supports parallel sketch
workers, and can extend an existing database.  What remains here:

- :func:`accession_of` -- header -> accession resolution (the role
  NCBI's ``accession2taxid`` files play for real MetaCache);
- :func:`build_from_fasta` -- a deprecated thin wrapper kept so
  pre-builder callers continue to work unchanged.
"""

from __future__ import annotations

import os
import warnings
from typing import Sequence

from repro.core.builder import DatabaseBuilder
from repro.core.config import MetaCacheParams
from repro.core.database import Database
from repro.gpu.device import Device
from repro.taxonomy.tree import Taxonomy

__all__ = ["build_from_fasta", "accession_of"]


def accession_of(header: str) -> str:
    """Accession = first token of the header, scaffold suffix stripped.

    ``SYN_001_002.3 some description`` -> ``SYN_001_002`` (every
    scaffold of an assembly maps to the same taxon, as with NCBI
    assembly accessions).  Empty and all-whitespace headers resolve
    to the empty accession; only a purely numeric suffix after the
    last dot is treated as a scaffold index.
    """
    parts = header.split(None, 1)
    if not parts:
        return ""
    token = parts[0]
    if "." in token:
        base, _, suffix = token.rpartition(".")
        if suffix.isdigit():
            return base
    return token


def build_from_fasta(
    paths: Sequence[str | os.PathLike],
    taxonomy: Taxonomy,
    accession_to_taxon: dict[str, int],
    params: MetaCacheParams | None = None,
    n_partitions: int = 1,
    devices: Sequence[Device] | None = None,
    batch_size: int = 32,
) -> Database:
    """Build a database from reference FASTA files.

    .. deprecated::
        use :class:`repro.core.builder.DatabaseBuilder` (or
        :meth:`repro.api.MetaCache.build`) instead -- this wrapper
        merely drives the builder's :meth:`~DatabaseBuilder.add_fasta`
        and produces byte-identical results.

    Headers whose accession is missing from ``accession_to_taxon``
    raise :class:`repro.errors.BuildError` (a ``KeyError``) naming
    the file and header -- silently dropping references would corrupt
    every downstream accuracy number.
    """
    warnings.warn(
        "build_from_fasta is deprecated; use repro.core.builder."
        "DatabaseBuilder (or MetaCache.build) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    with DatabaseBuilder(
        taxonomy,
        params,
        n_partitions=n_partitions,
        devices=devices,
    ) as builder:
        builder.add_fasta(paths, accession_to_taxon, batch_size=batch_size)
        return builder.finalize(condense=False)
