"""Interactive query sessions (Section 4).

"querying can be executed in different modes, either a single run
processing all supplied input files or an interactive session, which
holds the database in memory and allows for performing an arbitrary
number of queries in succession."

``QuerySession`` is that mode: it owns a database (built in-memory,
loaded from disk, or handed over from an on-the-fly build), keeps
running statistics across queries, and exposes the classify/map
operations with per-call parameter overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import Classification, classify_reads
from repro.core.config import ClassificationParams
from repro.core.database import Database
from repro.core.mapping import ReadMapping, map_reads
from repro.core.query import QueryResult, query_database
from repro.util.timer import StageTimer

__all__ = ["QuerySession", "SessionStats"]


@dataclass
class SessionStats:
    """Running totals across a session's queries."""

    n_queries: int = 0
    n_reads: int = 0
    n_classified: int = 0
    total_seconds: float = 0.0
    stages: StageTimer = field(default_factory=StageTimer)

    @property
    def reads_per_second(self) -> float:
        if self.total_seconds <= 0:
            return float("nan")
        return self.n_reads / self.total_seconds


class QuerySession:
    """Holds a database in memory for repeated queries."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.stats = SessionStats()

    def classify(
        self,
        sequences: list[np.ndarray],
        mates: list[np.ndarray] | None = None,
        classification: ClassificationParams | None = None,
    ) -> tuple[Classification, QueryResult]:
        """Classify one batch; accumulates session statistics.

        ``classification`` overrides the decision-rule parameters for
        this call only (the paper's Section 6.5 discusses retuning the
        hit threshold per analysis without rebuilding anything).
        """
        params = self.database.params
        if classification is not None:
            params = params.replace(classification=classification)
        result = query_database(self.database, sequences, mates=mates, params=params)
        cls = classify_reads(self.database, result.candidates, params.classification)
        self.stats.n_queries += 1
        self.stats.n_reads += result.n_reads
        self.stats.n_classified += cls.n_classified
        self.stats.total_seconds += result.stages.total
        self.stats.stages.merge(result.stages)
        return cls, result

    def map(
        self,
        sequences: list[np.ndarray],
        mates: list[np.ndarray] | None = None,
        min_hits: int | None = None,
    ) -> ReadMapping:
        """Map one batch to reference regions (extension feature)."""
        mapping = map_reads(
            self.database, sequences, mates=mates, min_hits=min_hits
        )
        self.stats.n_queries += 1
        self.stats.n_reads += len(sequences)
        return mapping

    def summary(self) -> str:
        s = self.stats
        frac = s.n_classified / s.n_reads if s.n_reads else float("nan")
        return (
            f"{s.n_queries} queries, {s.n_reads} reads, "
            f"{s.n_classified} classified ({frac:.1%}), "
            f"{s.reads_per_second:,.0f} reads/s"
        )
