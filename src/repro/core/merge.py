"""Merging independent partition query runs (Section 4.3).

"Partitioned databases can be queried sequentially using independent
query runs followed by a merge step to obtain the final classification
result."  This is the low-memory workflow: each partition is loaded
alone, queried, its per-read top candidates saved, and a final merge
combines the candidate files exactly as the in-memory ring merge
would -- targets never span partitions, so merging reduces to re-
selecting the top-m per read over the union.

Candidate sets serialize as NPZ; the merge validates read-count
consistency and (optionally) that target id ranges do not collide.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.candidates import Candidates

__all__ = ["save_candidates", "load_candidates", "merge_partition_runs"]


def save_candidates(candidates: Candidates, path: str | os.PathLike) -> None:
    """Persist one partition run's candidates."""
    with open(path, "wb") as fh:
        np.savez(
            fh,
            target=candidates.target,
            window_first=candidates.window_first,
            window_last=candidates.window_last,
            score=candidates.score,
            valid=candidates.valid,
        )


def load_candidates(path: str | os.PathLike) -> Candidates:
    with np.load(path) as data:
        return Candidates(
            target=data["target"],
            window_first=data["window_first"],
            window_last=data["window_last"],
            score=data["score"],
            valid=data["valid"],
        )


def merge_partition_runs(
    runs: Sequence[Candidates | str | os.PathLike],
    m: int | None = None,
) -> Candidates:
    """Merge candidates from independent partition query runs.

    ``runs`` may mix in-memory candidate sets and saved NPZ paths.
    The result equals querying one database holding all partitions
    (same guarantee as the device ring of Fig. 2).
    """
    if not runs:
        raise ValueError("no partition runs to merge")
    loaded = [
        r if isinstance(r, Candidates) else load_candidates(Path(r)) for r in runs
    ]
    n_reads = loaded[0].n_reads
    for i, c in enumerate(loaded[1:], start=1):
        if c.n_reads != n_reads:
            raise ValueError(
                f"partition run {i} covers {c.n_reads} reads, expected {n_reads}"
            )
    merged = loaded[0]
    for c in loaded[1:]:
        merged = merged.merged_with(c)
    if m is not None and merged.m > m:
        merged = Candidates(
            target=merged.target[:, :m],
            window_first=merged.window_first[:, :m],
            window_last=merged.window_last[:, :m],
            score=merged.score[:, :m],
            valid=merged.valid[:, :m],
        )
    return merged
