"""Merging independent partition query runs (Section 4.3).

"Partitioned databases can be queried sequentially using independent
query runs followed by a merge step to obtain the final classification
result."  This is the low-memory workflow: each partition is loaded
alone, queried, its per-read top candidates saved, and a final merge
combines the candidate files exactly as the in-memory ring merge
would -- targets never span partitions, so merging reduces to re-
selecting the top-m per read over the union.

Candidate sets serialize as NPZ; the merge validates read-count
consistency and (optionally) that target id ranges do not collide.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.candidates import Candidates

__all__ = ["save_candidates", "load_candidates", "merge_partition_runs"]


def save_candidates(candidates: Candidates, path: str | os.PathLike) -> None:
    """Persist one partition run's candidates."""
    with open(path, "wb") as fh:
        np.savez(
            fh,
            target=candidates.target,
            window_first=candidates.window_first,
            window_last=candidates.window_last,
            score=candidates.score,
            valid=candidates.valid,
        )


def load_candidates(path: str | os.PathLike) -> Candidates:
    with np.load(path) as data:
        return Candidates(
            target=data["target"],
            window_first=data["window_first"],
            window_last=data["window_last"],
            score=data["score"],
            valid=data["valid"],
        )


def _validate_run(c: Candidates, index: int) -> None:
    """Reject a candidate set whose five arrays disagree in shape."""
    shape = c.target.shape
    if len(shape) != 2:
        raise ValueError(
            f"partition run {index}: candidate arrays must be 2-D "
            f"(n_reads, m), got shape {shape}"
        )
    for name in ("window_first", "window_last", "score", "valid"):
        other = getattr(c, name).shape
        if other != shape:
            raise ValueError(
                f"partition run {index}: {name} has shape {other}, "
                f"expected {shape} (matching target)"
            )


def _truncate(c: Candidates, m: int) -> Candidates:
    """Keep the first ``m`` candidate columns (rows are score-ordered).

    Safe at any merge point: within a row, candidates are ordered by
    (descending score, ascending target id), so the surviving prefix
    of a partial merge always contains every candidate that could
    still reach the final top-``m`` -- dropping the tail can never
    change the end result.  Copies into C-contiguous arrays so the
    truncated set does not pin the wider parent buffers alive.
    """
    if c.m <= m:
        return c
    return Candidates(
        target=np.ascontiguousarray(c.target[:, :m]),
        window_first=np.ascontiguousarray(c.window_first[:, :m]),
        window_last=np.ascontiguousarray(c.window_last[:, :m]),
        score=np.ascontiguousarray(c.score[:, :m]),
        valid=np.ascontiguousarray(c.valid[:, :m]),
    )


def merge_partition_runs(
    runs: Sequence[Candidates | str | os.PathLike],
    m: int | None = None,
) -> Candidates:
    """Merge candidates from independent partition query runs.

    ``runs`` may mix in-memory candidate sets and saved NPZ paths.
    The result equals querying one database holding all partitions
    (same guarantee as the device ring of Fig. 2), and -- because
    candidates order by (descending score, ascending target id), a
    strict total order whenever targets are unique across runs -- it
    is independent of how the runs are grouped or ordered, which is
    what lets the shard router merge per-shard partial merges.  Score
    ties between *duplicate* target ids (never produced by partition
    runs, but accepted) keep ascending-target-id order, with run
    position breaking exact (score, target) ties stably.

    Edge cases, pinned by ``tests/test_core_candidates.py``: an empty
    ``runs`` sequence raises ``ValueError``; a single run passes
    through untouched apart from ``m``-truncation; runs covering zero
    reads (or zero candidate columns) merge without error.
    """
    if not runs:
        raise ValueError("no partition runs to merge")
    loaded = [
        r if isinstance(r, Candidates) else load_candidates(Path(r)) for r in runs
    ]
    for i, c in enumerate(loaded):
        _validate_run(c, i)
    n_reads = loaded[0].n_reads
    for i, c in enumerate(loaded[1:], start=1):
        if c.n_reads != n_reads:
            raise ValueError(
                f"partition run {i} covers {c.n_reads} reads, expected {n_reads}"
            )
    merged = loaded[0]
    for c in loaded[1:]:
        merged = merged.merged_with(c)
    if m is not None:
        if m < 1:
            raise ValueError("m must be >= 1")
        merged = _truncate(merged, m)
    return merged
