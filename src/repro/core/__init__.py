"""MetaCache core: database build, query, classification.

This package is the paper's primary contribution assembled from the
substrates:

- :mod:`repro.core.config` -- all tunables with the paper defaults
  (k=16, s=16, w=127, 254 locations/feature, ...).
- :mod:`repro.core.database` -- the reference database: partitioned
  multi-bucket k-mer index + taxonomy + target metadata.
- :mod:`repro.core.candidates` -- window-count statistics and
  sliding-window top-candidate generation (Fig. 1 step 2).
- :mod:`repro.core.query` -- the 8-step query pipeline of Section 5.2
  with per-stage instrumentation (Fig. 5).
- :mod:`repro.core.classify` -- the top-hit / LCA classification rule.
- :mod:`repro.core.stats` -- precision/sensitivity evaluation (Table 6).
- :mod:`repro.core.abundance` -- abundance estimation (KAL_D study).
- :mod:`repro.core.io` -- save/load in the condensed query layout.
- :mod:`repro.core.onthefly` -- on-the-fly build+query mode (Table 5).
"""

from repro.core.config import MetaCacheParams, ClassificationParams
from repro.core.database import Database, TargetRecord, DatabasePartition
from repro.core.candidates import Candidates, generate_top_candidates
from repro.core.query import QueryResult, query_database
from repro.core.classify import classify_reads, Classification
from repro.core.stats import evaluate_accuracy, AccuracyReport
from repro.core.abundance import estimate_abundances, abundance_deviation
from repro.core.io import save_database, load_database
from repro.core.onthefly import build_and_query
from repro.core.mapping import ReadMapping, map_reads
from repro.core.merge import merge_partition_runs, save_candidates, load_candidates
from repro.core.session import QuerySession

__all__ = [
    "MetaCacheParams",
    "ClassificationParams",
    "Database",
    "TargetRecord",
    "DatabasePartition",
    "Candidates",
    "generate_top_candidates",
    "QueryResult",
    "query_database",
    "classify_reads",
    "Classification",
    "evaluate_accuracy",
    "AccuracyReport",
    "estimate_abundances",
    "abundance_deviation",
    "save_database",
    "load_database",
    "build_and_query",
    "ReadMapping",
    "map_reads",
    "merge_partition_runs",
    "save_candidates",
    "load_candidates",
    "QuerySession",
]
