"""The query pipeline (Section 5.2, steps 1-8) with stage timers.

Per batch of reads:

1-3. encode + hash + sketch every read window (one batched kernel
     over the batch's *packed* code buffer -- no per-read loop);
4.   query sketch features against each partition's hash table;
5.   compact per-window location lists into per-read segments
     (the feature-order output of the batched retrieve is already
     window-grouped, so compaction reduces to offset arithmetic --
     the simulated kernel time is what the cost model charges);
6.   segmented sort of each read's locations;
7-8. window-count statistic + sliding-window top-m candidates.

Reads enter as a :class:`~repro.pipeline.packed.PackedReads` batch
(one contiguous uint8 buffer + int64 offset/read-id arrays, the host
analogue of MetaCache-GPU staging whole read batches in device
buffers); the legacy list-of-arrays shape is still accepted and packed
on entry.  ``kernels="legacy"`` runs the pre-packing per-read
reference path instead -- kept verbatim so the equivalence harness
and the packed-vs-legacy benchmark can hold the old behavior fixed.

With several partitions, sketches are generated once and each
partition produces local top hits which merge along the (simulated)
device ring -- contents identical to a single-table query because
targets are never split across partitions.

Paired-end mates are interleaved (m1[0], m2[0], m1[1], ...) so each
pair's windows are adjacent and feed one combined candidate list, as
in Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.candidates import Candidates, generate_top_candidates
from repro.core.config import MetaCacheParams
from repro.core.database import Database
from repro.gpu.multi_gpu import ring_merge_candidates
from repro.gpu.topology import MultiGpuNode
from repro.hashing.minhash import SKETCH_PAD
from repro.hashing.sketch import sketch_reads_loop, sketch_reads_packed
from repro.pipeline.packed import PackedReads
from repro.sort.compaction import read_segment_offsets
from repro.sort.segmented import segmented_sort_lexsort
from repro.util.timer import StageTimer

__all__ = ["QueryResult", "query_database"]


@dataclass
class QueryResult:
    """Output of a query run: top candidates + instrumentation."""

    candidates: Candidates
    n_reads: int
    read_lengths: np.ndarray  # total bases per read (both mates)
    stages: StageTimer = field(default_factory=StageTimer)
    total_locations: int = 0


def _interleave_pairs_loop(
    sequences: list[np.ndarray], mates: list[np.ndarray] | None
) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    """Flatten reads (+mates) into one sequence list with read ids.

    The pre-packing reference: builds ``ids``/``lengths`` with
    per-element Python loops.  Superseded in production by
    :meth:`PackedReads.from_reads`, which computes the same
    interleaving with array ops; kept only for ``kernels="legacy"``
    so the equivalence harness can pin the old behavior.
    """
    n = len(sequences)
    if mates is None:
        ids = np.arange(n, dtype=np.int64)
        lengths = np.array([s.size for s in sequences], dtype=np.int64)
        return list(sequences), ids, lengths
    if len(mates) != n:
        raise ValueError("mates list must match sequences list")
    seqs: list[np.ndarray] = []
    ids = np.empty(2 * n, dtype=np.int64)
    for i, (m1, m2) in enumerate(zip(sequences, mates)):
        seqs.append(m1)
        seqs.append(m2)
        ids[2 * i] = i
        ids[2 * i + 1] = i
    lengths = np.array(
        [a.size + b.size for a, b in zip(sequences, mates)], dtype=np.int64
    )
    return seqs, ids, lengths


def query_database(
    db: Database,
    sequences: "PackedReads | list[np.ndarray]",
    mates: list[np.ndarray] | None = None,
    params: MetaCacheParams | None = None,
    node: MultiGpuNode | None = None,
    kernels: str = "packed",
    partition_ids: Sequence[int] | None = None,
) -> QueryResult:
    """Query reads against every database partition and merge.

    Parameters
    ----------
    db:
        the database (build or condensed layout).
    sequences / mates:
        the reads -- either one :class:`PackedReads` batch (``mates``
        must then be ``None``: pairs are already interleaved inside
        it), or the legacy list-of-arrays shape, packed on entry.
    params:
        defaults to the database's own parameters.
    node:
        optional multi-GPU node; when given and matching the
        partition count, candidate merging runs through the simulated
        device ring (identical results, adds transfer timing).
    kernels:
        ``"packed"`` (default) runs the contiguous-buffer hot path;
        ``"legacy"`` runs the retained per-read reference
        implementation (list input only).  Results are byte-identical
        -- asserted by ``tests/test_packed_equivalence.py``.
    partition_ids:
        restrict the run to this strictly ascending subset of the
        database's partitions (default: all of them).  The shard
        workers of :mod:`repro.shard` use this to query only their
        assigned partition set; merging the per-shard results with
        :func:`repro.core.merge.merge_partition_runs` reproduces the
        full-database result exactly, because candidate targets are
        unique across partitions.  Incompatible with a simulated
        multi-GPU ``node`` (the ring spans every partition).
    """
    params = params or db.params
    timer = StageTimer()
    if kernels not in ("packed", "legacy"):
        raise ValueError(f"unknown kernels mode {kernels!r}")
    if isinstance(sequences, PackedReads):
        if mates is not None:
            raise ValueError(
                "mates must be None for packed input (pairs are "
                "interleaved inside the PackedReads batch)"
            )
        if kernels == "legacy":
            raise ValueError("kernels='legacy' requires list input")
        packed = sequences
    elif kernels == "packed":
        packed = PackedReads.from_reads(sequences, mates)
    else:
        packed = None

    m = params.classification.max_candidates
    if packed is not None:
        n_reads = packed.n_reads
        read_lengths = packed.read_lengths
        with timer.stage("sketch"):
            sketches, window_read_ids = sketch_reads_packed(
                packed.buffer, packed.offsets, params.sketch, packed.read_ids
            )
        sws = params.sliding_window_sizes(read_lengths)
    else:
        seqs, read_ids, read_lengths = _interleave_pairs_loop(sequences, mates)
        n_reads = len(sequences)
        with timer.stage("sketch"):
            sketches, window_read_ids = sketch_reads_loop(
                seqs, params.sketch, read_ids
            )
        sws = np.array(
            [params.sliding_window_size(int(l)) for l in read_lengths],
            dtype=np.int64,
        )

    n_windows, s = sketches.shape
    flat_features = sketches.reshape(-1)
    valid = flat_features != SKETCH_PAD
    feat_window = np.repeat(np.arange(n_windows, dtype=np.int64), s)[valid]
    features = flat_features[valid]

    if partition_ids is None:
        pids: Sequence[int] = range(db.n_partitions)
    else:
        pids = [int(p) for p in partition_ids]
        if not pids:
            raise ValueError("partition_ids must name at least one partition")
        if any(p < 0 or p >= db.n_partitions for p in pids):
            raise ValueError(
                f"partition_ids {pids} out of range for a database with "
                f"{db.n_partitions} partition(s)"
            )
        if any(b <= a for a, b in zip(pids, pids[1:])):
            # ascending order pins the local merge order, so a shard's
            # partial result is deterministic regardless of plan shape
            raise ValueError(f"partition_ids must be strictly ascending: {pids}")
        if node is not None:
            raise ValueError(
                "partition_ids cannot be combined with a simulated "
                "multi-GPU node (the device ring spans all partitions)"
            )

    per_partition: list[Candidates] = []
    total_locations = 0
    for pid in pids:
        with timer.stage("query"):
            locations, feat_offsets = db.query_features(features, pid)
        total_locations += locations.size
        with timer.stage("compact"):
            feat_lengths = np.diff(feat_offsets)
            # integer scatter-add, not bincount(weights=...): weighted
            # bincount accumulates in float64 and silently loses
            # exactness past 2^53 total hits
            window_counts = np.zeros(n_windows, dtype=np.int64)
            np.add.at(window_counts, feat_window, feat_lengths)
            read_offsets = read_segment_offsets(
                window_read_ids, window_counts, n_reads
            )
        with timer.stage("segmented_sort"):
            sorted_locations = segmented_sort_lexsort(locations, read_offsets)
        with timer.stage("window_count_top"):
            cands = generate_top_candidates(sorted_locations, read_offsets, sws, m)
        per_partition.append(cands)

    with timer.stage("merge"):
        if node is not None and node.n_gpus == db.n_partitions and node.n_gpus > 1:
            merged, _ = ring_merge_candidates(
                node, per_partition, sketch_bytes=int(features.nbytes)
            )
        else:
            merged = per_partition[0]
            for cands in per_partition[1:]:
                merged = merged.merged_with(cands)

    return QueryResult(
        candidates=merged,
        n_reads=n_reads,
        read_lengths=read_lengths,
        stages=timer,
        total_locations=total_locations,
    )
