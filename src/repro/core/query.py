"""The query pipeline (Section 5.2, steps 1-8) with stage timers.

Per batch of reads:

1-3. encode + hash + sketch every read window (one batched kernel);
4.   query sketch features against each partition's hash table;
5.   compact per-window location lists into per-read segments
     (the feature-order output of the batched retrieve is already
     window-grouped, so compaction reduces to offset arithmetic --
     the simulated kernel time is what the cost model charges);
6.   segmented sort of each read's locations;
7-8. window-count statistic + sliding-window top-m candidates.

With several partitions, sketches are generated once and each
partition produces local top hits which merge along the (simulated)
device ring -- contents identical to a single-table query because
targets are never split across partitions.

Paired-end mates are interleaved (m1[0], m2[0], m1[1], ...) so each
pair's windows are adjacent and feed one combined candidate list, as
in Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import Candidates, generate_top_candidates
from repro.core.config import MetaCacheParams
from repro.core.database import Database
from repro.gpu.multi_gpu import ring_merge_candidates
from repro.gpu.topology import MultiGpuNode
from repro.hashing.minhash import SKETCH_PAD
from repro.hashing.sketch import sketch_reads
from repro.sort.compaction import read_segment_offsets
from repro.sort.segmented import segmented_sort_lexsort
from repro.util.timer import StageTimer

__all__ = ["QueryResult", "query_database"]


@dataclass
class QueryResult:
    """Output of a query run: top candidates + instrumentation."""

    candidates: Candidates
    n_reads: int
    read_lengths: np.ndarray  # total bases per read (both mates)
    stages: StageTimer = field(default_factory=StageTimer)
    total_locations: int = 0


def _interleave_pairs(
    sequences: list[np.ndarray], mates: list[np.ndarray] | None
) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    """Flatten reads (+mates) into one sequence list with read ids."""
    n = len(sequences)
    if mates is None:
        ids = np.arange(n, dtype=np.int64)
        lengths = np.array([s.size for s in sequences], dtype=np.int64)
        return list(sequences), ids, lengths
    if len(mates) != n:
        raise ValueError("mates list must match sequences list")
    seqs: list[np.ndarray] = []
    ids = np.empty(2 * n, dtype=np.int64)
    for i, (m1, m2) in enumerate(zip(sequences, mates)):
        seqs.append(m1)
        seqs.append(m2)
        ids[2 * i] = i
        ids[2 * i + 1] = i
    lengths = np.array(
        [a.size + b.size for a, b in zip(sequences, mates)], dtype=np.int64
    )
    return seqs, ids, lengths


def query_database(
    db: Database,
    sequences: list[np.ndarray],
    mates: list[np.ndarray] | None = None,
    params: MetaCacheParams | None = None,
    node: MultiGpuNode | None = None,
) -> QueryResult:
    """Query reads against every database partition and merge.

    Parameters
    ----------
    db:
        the database (build or condensed layout).
    sequences / mates:
        encoded reads; ``mates`` enables paired-end mode.
    params:
        defaults to the database's own parameters.
    node:
        optional multi-GPU node; when given and matching the
        partition count, candidate merging runs through the simulated
        device ring (identical results, adds transfer timing).
    """
    params = params or db.params
    timer = StageTimer()
    seqs, read_ids, read_lengths = _interleave_pairs(sequences, mates)
    n_reads = len(sequences)
    m = params.classification.max_candidates

    with timer.stage("sketch"):
        sketches, window_read_ids = sketch_reads(seqs, params.sketch, read_ids)
    n_windows, s = sketches.shape
    flat_features = sketches.reshape(-1)
    valid = flat_features != SKETCH_PAD
    feat_window = np.repeat(np.arange(n_windows, dtype=np.int64), s)[valid]
    features = flat_features[valid]

    sws = np.array(
        [params.sliding_window_size(int(l)) for l in read_lengths], dtype=np.int64
    )

    per_partition: list[Candidates] = []
    total_locations = 0
    for pid in range(db.n_partitions):
        with timer.stage("query"):
            locations, feat_offsets = db.query_features(features, pid)
        total_locations += locations.size
        with timer.stage("compact"):
            feat_lengths = np.diff(feat_offsets)
            # integer scatter-add, not bincount(weights=...): weighted
            # bincount accumulates in float64 and silently loses
            # exactness past 2^53 total hits
            window_counts = np.zeros(n_windows, dtype=np.int64)
            np.add.at(window_counts, feat_window, feat_lengths)
            read_offsets = read_segment_offsets(
                window_read_ids, window_counts, n_reads
            )
        with timer.stage("segmented_sort"):
            sorted_locations = segmented_sort_lexsort(locations, read_offsets)
        with timer.stage("window_count_top"):
            cands = generate_top_candidates(sorted_locations, read_offsets, sws, m)
        per_partition.append(cands)

    with timer.stage("merge"):
        if node is not None and node.n_gpus == db.n_partitions and node.n_gpus > 1:
            merged, _ = ring_merge_candidates(
                node, per_partition, sketch_bytes=int(features.nbytes)
            )
        else:
            merged = per_partition[0]
            for cands in per_partition[1:]:
                merged = merged.merged_with(cands)

    return QueryResult(
        candidates=merged,
        n_reads=n_reads,
        read_lengths=read_lengths,
        stages=timer,
        total_locations=total_locations,
    )
