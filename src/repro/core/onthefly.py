"""On-the-fly mode: query straight after building (Sections 4, 6.3).

The paper's headline operational win: because the GPU build takes
seconds, a database can be constructed *in memory* and queried
immediately -- no write to disk, no reload -- making "analysis
pipelines with on-demand composition of large-scale reference genome
sets practical".  The hash table is used as-is (build layout), which
costs ~20% query speed versus the condensed layout but removes the
entire write+load cycle (Fig. 4 / Table 5).

``build_and_query`` also measures the phase times so the benches can
produce the Fig. 4 bars and the Table 5 TTQ comparison from one call.

External callers should use :meth:`repro.api.MetaCache.ephemeral`,
which wraps this mode behind the stable facade; this module remains
the internal engine and the bench harness's phase-timing entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.classify import Classification, classify_reads
from repro.core.config import MetaCacheParams
from repro.core.database import Database
from repro.core.query import QueryResult, query_database
from repro.gpu.device import Device
from repro.taxonomy.tree import Taxonomy
from repro.util.timer import StageTimer, Timer

__all__ = ["OnTheFlyRun", "build_and_query"]


@dataclass
class OnTheFlyRun:
    """Everything produced by one on-the-fly session."""

    database: Database
    query_result: QueryResult
    classification: Classification
    phases: StageTimer

    @property
    def time_to_query(self) -> float:
        """Seconds from cold start until queries could run (Table 5)."""
        return self.phases.stages.get("build", 0.0)


def build_and_query(
    references: Iterable[tuple[str, np.ndarray, int]],
    taxonomy: Taxonomy,
    sequences: list[np.ndarray],
    mates: list[np.ndarray] | None = None,
    params: MetaCacheParams | None = None,
    n_partitions: int = 1,
    devices: Sequence[Device] | None = None,
) -> OnTheFlyRun:
    """Build an in-memory database and classify reads immediately."""
    params = params or MetaCacheParams()
    phases = StageTimer()
    with Timer() as t_build:
        db = Database.build(
            references,
            taxonomy,
            params=params,
            n_partitions=n_partitions,
            devices=devices,
        )
    phases.add("build", t_build.elapsed)
    with Timer() as t_query:
        result = query_database(db, sequences, mates=mates, params=params)
        classification = classify_reads(db, result.candidates)
    phases.add("query", t_query.elapsed)
    return OnTheFlyRun(
        database=db,
        query_result=result,
        classification=classification,
        phases=phases,
    )
