"""Top-candidate generation: window-count statistic + sliding window.

Steps (7) and (8) of the query pipeline (Sections 4.2 / 5.6): after
the per-read location lists are sorted, identical locations are
accumulated into a sparse histogram of hits per reference window (the
*window count statistic*), a sliding window of ``sws`` consecutive
reference windows aggregates counts into contiguous-region scores,
and the best region per target competes for the read's top-``m``
candidate list.

Everything here is batch-vectorized over *all* reads at once:

- run-length encoding collapses identical (read, location) pairs;
- the per-(read, target) runs are made globally monotonic by offsetting
  window ids with run_id * OFFSET, so one ``np.searchsorted`` finds
  every sliding-window span end simultaneously;
- per-run maxima and per-read top-m selection use the segmented
  primitives from :mod:`repro.util.segmented`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.bitops import unpack_pairs
from repro.util.scan import exclusive_prefix_sum
from repro.util.segmented import (
    first_occurrence_mask,
    segment_ids_from_offsets,
    segmented_top_k_mask,
)

__all__ = ["Candidates", "generate_top_candidates"]


@dataclass
class Candidates:
    """Top-m candidates for a batch of reads (padded arrays).

    All arrays have shape ``(n_reads, m)``; entries beyond a read's
    candidate count are masked False in ``valid`` (targets/scores 0).
    Candidates are ordered by descending score within each read.
    """

    target: np.ndarray  # uint32 target ids
    window_first: np.ndarray  # uint32: start of the best window range
    window_last: np.ndarray  # uint32: end (inclusive) of the range
    score: np.ndarray  # int64 aggregated hit counts
    valid: np.ndarray  # bool

    @property
    def n_reads(self) -> int:
        return self.target.shape[0]

    @property
    def m(self) -> int:
        return self.target.shape[1]

    def merged_with(self, other: "Candidates") -> "Candidates":
        """Merge two candidate sets read-wise, keeping the top-m.

        Used for multi-GPU queries: each device produces local top
        hits which are merged pairwise along the device ring (Fig. 2).
        Targets are unique per device (a reference is never split
        across GPUs) so merging never has to combine scores.
        """
        if self.n_reads != other.n_reads:
            raise ValueError("candidate sets cover different read counts")
        m = max(self.m, other.m)
        tgt = np.concatenate([self.target, other.target], axis=1)
        wf = np.concatenate([self.window_first, other.window_first], axis=1)
        wl = np.concatenate([self.window_last, other.window_last], axis=1)
        sc = np.concatenate([self.score, other.score], axis=1)
        va = np.concatenate([self.valid, other.valid], axis=1)
        # order each row by (-valid, -score, target) and keep first m.
        # The target tie-break matters: single-partition generation
        # ranks equal-score candidates by ascending target id (location
        # lists sort by packed (target, window)), so merging must break
        # score ties the same way or multi-partition queries would
        # order -- and at the m-th slot, *select* -- candidates
        # differently than the equivalent single-partition query.
        order = np.lexsort((tgt, -sc, ~va), axis=1)
        rows = np.arange(tgt.shape[0])[:, None]
        take = order[:, :m]
        return Candidates(
            target=tgt[rows, take],
            window_first=wf[rows, take],
            window_last=wl[rows, take],
            score=sc[rows, take],
            valid=va[rows, take],
        )


def generate_top_candidates(
    locations: np.ndarray,
    read_offsets: np.ndarray,
    sws: np.ndarray | int,
    m: int,
) -> Candidates:
    """Compute top-m candidates per read from *sorted* location lists.

    Parameters
    ----------
    locations:
        uint64 packed (target, window) pairs; each read's segment must
        be sorted ascending (the segmented-sort stage guarantees it).
    read_offsets:
        length ``n_reads + 1`` offsets into ``locations``.
    sws:
        sliding-window size per read (or one int for all): the number
        of consecutive reference windows a candidate region may span.
    m:
        top-list length.
    """
    read_offsets = np.asarray(read_offsets, dtype=np.int64)
    n_reads = read_offsets.size - 1
    if m < 1:
        raise ValueError("m must be >= 1")
    out = Candidates(
        target=np.zeros((n_reads, m), dtype=np.uint32),
        window_first=np.zeros((n_reads, m), dtype=np.uint32),
        window_last=np.zeros((n_reads, m), dtype=np.uint32),
        score=np.zeros((n_reads, m), dtype=np.int64),
        valid=np.zeros((n_reads, m), dtype=bool),
    )
    locations = np.asarray(locations, dtype=np.uint64)
    if locations.size == 0 or n_reads == 0:
        return out
    read_ids = segment_ids_from_offsets(read_offsets)
    sws_arr = np.broadcast_to(np.asarray(sws, dtype=np.int64), (n_reads,))

    # -- window count statistic: collapse runs of equal (read, location).
    # Within a read the list is sorted and reads are contiguous, so
    # adjacent-equality on both arrays is exactly per-read RLE.
    same = np.zeros(locations.size, dtype=bool)
    same[1:] = (locations[1:] == locations[:-1]) & (read_ids[1:] == read_ids[:-1])
    starts = np.flatnonzero(~same)
    u_loc = locations[starts]
    u_read = read_ids[starts]
    u_count = np.diff(np.append(starts, locations.size)).astype(np.int64)

    u_target, u_window = unpack_pairs(u_loc)
    u_target = u_target.astype(np.int64)
    u_window = u_window.astype(np.int64)

    # -- runs of equal (read, target)
    run_head = np.zeros(u_loc.size, dtype=bool)
    run_head[0] = True
    run_head[1:] = (u_read[1:] != u_read[:-1]) | (u_target[1:] != u_target[:-1])
    run_id = np.cumsum(run_head) - 1

    # -- monotonic window axis across runs -> one global searchsorted
    # OFFSET must exceed any window id + sws so run blocks never overlap.
    max_win = int(u_window.max()) if u_window.size else 0
    max_sws = int(sws_arr.max()) if sws_arr.size else 1
    offset = np.int64(max_win + max_sws + 2)
    w_mono = u_window + run_id * offset
    span_limit = w_mono + sws_arr[u_read]
    # end index (exclusive) of each sliding-window span
    span_end = np.searchsorted(w_mono, span_limit, side="left")

    csum = exclusive_prefix_sum(u_count)
    idx = np.arange(u_loc.size, dtype=np.int64)
    scores = csum[span_end] - csum[idx]

    # -- best candidate per (read, target) run
    # order within runs by (-score, index): first occurrence per run wins
    order = np.lexsort((idx, -scores, run_id))
    run_sorted = run_id[order]
    best_mask = first_occurrence_mask(run_sorted)
    best_idx = order[best_mask]  # one entry per run, its argmax
    b_read = u_read[best_idx]
    b_score = scores[best_idx]

    # -- top-m runs per read
    top_mask = segmented_top_k_mask(b_read, b_score, m)
    sel = best_idx[top_mask]
    sel_read = b_read[top_mask]
    sel_score = b_score[top_mask]
    # rank within read by (-score, index) for deterministic column order
    rank_order = np.lexsort((sel, -sel_score, sel_read))
    sel = sel[rank_order]
    sel_read = sel_read[rank_order]
    sel_score = sel_score[rank_order]
    col = np.zeros(sel.size, dtype=np.int64)
    if sel.size:
        head = np.zeros(sel.size, dtype=bool)
        head[0] = True
        head[1:] = sel_read[1:] != sel_read[:-1]
        first_pos = np.flatnonzero(head)
        seg = np.cumsum(head) - 1
        col = np.arange(sel.size) - first_pos[seg]

    out.target[sel_read, col] = u_target[sel].astype(np.uint32)
    out.window_first[sel_read, col] = u_window[sel].astype(np.uint32)
    last_idx = span_end[sel] - 1
    out.window_last[sel_read, col] = u_window[last_idx].astype(np.uint32)
    out.score[sel_read, col] = sel_score
    out.valid[sel_read, col] = True
    return out
