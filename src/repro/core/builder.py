"""Streaming database construction: the :class:`DatabaseBuilder`.

The paper's headline contribution is ultra-fast database
*construction*: a two-phase producer/consumer pipeline (Fig. 2) in
which producers parse and sketch reference sequences while a consumer
performs massively parallel batched inserts.  This module is that
pipeline's composable host-side surface:

- :meth:`DatabaseBuilder.add_reference` ingests one already-encoded
  reference; :meth:`DatabaseBuilder.add_fasta` streams reference
  FASTA files through a producer thread.  Either way peak memory is
  bounded by the insert batch, **not** the corpus: sequences are
  sketched and dropped as they arrive, and partition assignment is
  *online* greedy (lightest partition first, per arrival) so no
  collect-everything pass exists anywhere.
- ``sketch_workers=N`` fans the sketch phase out over
  :class:`repro.parallel.ParallelSketcher` worker processes while
  this builder, as the consumer, keeps performing ordered batched
  inserts -- the paper's two-phase pipeline.
- :meth:`DatabaseBuilder.from_database` re-opens a finished database
  for extension: new targets are appended and the result re-saved,
  with partition loads and per-feature location lists continuing
  exactly where the original build stopped.
- :attr:`DatabaseBuilder.stats` exposes the paper's "lost features"
  accounting (Section 6.5): features sketched, inserted, and dropped
  at ``max_locations_per_feature``.

Every construction path -- one-shot :meth:`Database.build` (now a
thin wrapper over this builder), incremental ``add_reference`` calls,
``add_fasta`` streaming, parallel sketch workers, and
extend-then-finalize -- produces **byte-identical** databases.  That
invariant rests on two properties: partition assignment depends only
on arrival order, and the multi-bucket table stores each key's values
in global submission order regardless of insert batch boundaries or
table geometry (a key's slot chain fills strictly in probe order and
slots are never deleted).  The insert tables grow by chunked rebuild,
so builds never need the corpus-wide size precomputation the old
one-shot path used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.config import MetaCacheParams
from repro.core.database import Database, DatabasePartition, TargetRecord
from repro.errors import BuildError
from repro.gpu.device import Device
from repro.hashing.minhash import SKETCH_PAD
from repro.hashing.sketch import sketch_sequence
from repro.taxonomy.tree import Taxonomy
from repro.util.bitops import pack_pairs
from repro.warpcore.multi_bucket import MultiBucketHashTable

__all__ = ["BuildStats", "DatabaseBuilder"]


@dataclass(frozen=True)
class BuildStats:
    """Progress/accounting snapshot of a :class:`DatabaseBuilder`.

    The feature counters implement the paper's "lost features"
    accounting: ``features_sketched`` valid sketch features were
    produced, of which ``features_inserted`` are stored in the index,
    ``features_dropped`` were discarded by the per-feature location
    cap (``max_locations_per_feature``, Section 4.1) or probe-limit
    overflow, and ``features_pending`` sit in the insert buffer
    awaiting the next batched flush.
    """

    n_targets: int = 0
    n_windows: int = 0
    n_bases: int = 0
    features_sketched: int = 0
    features_inserted: int = 0
    features_dropped: int = 0
    features_pending: int = 0

    @property
    def features_kept_fraction(self) -> float:
        """Inserted / sketched (NaN before any feature was sketched)."""
        if self.features_sketched == 0:
            return float("nan")
        return self.features_inserted / self.features_sketched

    def summary(self) -> str:
        """One-line human summary (targets, windows, lost features)."""
        return (
            f"{self.n_targets} targets, {self.n_windows:,} windows, "
            f"{self.n_bases:,} bases; features: "
            f"{self.features_inserted:,} inserted / "
            f"{self.features_dropped:,} dropped"
            + (
                f" / {self.features_pending:,} pending"
                if self.features_pending
                else ""
            )
        )


class _GrowingTable:
    """A :class:`MultiBucketHashTable` that grows by chunked rebuild.

    The one-shot build sized each partition's table from the full
    corpus up front; a streaming build cannot.  This wrapper starts
    small and, when an insert batch would exceed the current value
    capacity, rebuilds into a doubled table by re-inserting the old
    content in sorted-key chunks.  Re-insertion preserves each key's
    value order (which is submission order -- the only property the
    condensed layout and queries observe), so growth is invisible in
    the final database bytes.  Chunked retrieval keeps the transient
    rebuild memory bounded by the chunk size, not the table size.
    """

    #: keys re-inserted per rebuild chunk (bounds rebuild transients)
    REBUILD_CHUNK_KEYS = 1 << 15

    def __init__(self, params: MetaCacheParams, initial_capacity: int) -> None:
        self.params = params
        self.capacity_values = max(256, int(initial_capacity))
        self.table = self._allocate(self.capacity_values)

    def _allocate(self, capacity_values: int) -> MultiBucketHashTable:
        p = self.params
        return MultiBucketHashTable(
            capacity_values=capacity_values,
            bucket_size=p.bucket_size,
            group_size=p.group_size,
            max_load_factor=p.max_load_factor,
            max_locations_per_key=p.max_locations_per_feature,
        )

    def insert(self, feats: np.ndarray, locs: np.ndarray) -> None:
        """Insert a feature/location batch, growing first if needed."""
        needed = self.table.stored_values + feats.size
        if needed > self.capacity_values:
            new_capacity = self.capacity_values
            while needed > new_capacity:
                new_capacity *= 2
            self._grow(new_capacity)
        self.table.insert(feats, locs)

    def _grow(self, new_capacity: int) -> None:
        old = self.table
        dropped_before = old.dropped_values
        new = self._allocate(new_capacity)
        self.capacity_values = new_capacity
        keys = old.occupied_keys()
        for start in range(0, keys.size, self.REBUILD_CHUNK_KEYS):
            chunk = keys[start : start + self.REBUILD_CHUNK_KEYS]
            values, offsets = old.retrieve(chunk)
            counts = np.diff(offsets)
            new.insert(np.repeat(chunk, counts), values)
        # stored values always fit under the (unchanged) per-key cap,
        # so a rebuild can never drop; carry the historical drop count
        new._dropped += dropped_before
        self.table = new


class DatabaseBuilder:
    """Incremental, bounded-memory, parallel database construction.

    Parameters
    ----------
    taxonomy:
        the taxonomy every reference's taxon id must resolve in.
    params:
        database configuration (defaults to :class:`MetaCacheParams`).
    n_partitions:
        number of database partitions; arriving targets are assigned
        online to the currently lightest partition (by accumulated
        bases), never splitting a target -- the same greedy rule the
        one-shot build applied, made streaming.
    devices:
        optional simulated devices (one per partition); each
        partition's final table allocation is charged against its
        device at :meth:`finalize`, and
        :class:`~repro.gpu.memory.OutOfDeviceMemory` propagates.
    insert_batch_windows:
        windows buffered per partition before a batched insert is
        flushed into the hash table; bounds the builder's transient
        memory.
    sketch_workers:
        fan the sketch phase out over this many worker processes
        (:class:`repro.parallel.ParallelSketcher`); 1 sketches inline.
        Results are drained in submission order, so the produced
        database is byte-identical for any worker count.
    on_progress:
        optional callback invoked with a :class:`BuildStats` snapshot
        after each ingested target.

    The builder is single-shot: after :meth:`finalize` returns the
    :class:`Database`, further ``add_*`` calls raise ``RuntimeError``.
    It is also a context manager -- exiting the ``with`` block closes
    the sketch worker pool if one was started (without finalizing).
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        params: MetaCacheParams | None = None,
        *,
        n_partitions: int = 1,
        devices: Sequence[Device] | None = None,
        insert_batch_windows: int = 100_000,
        sketch_workers: int = 1,
        on_progress: Callable[[BuildStats], None] | None = None,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if sketch_workers < 1:
            raise ValueError("sketch_workers must be >= 1")
        if devices is not None and len(devices) < n_partitions:
            raise ValueError("need at least one device per partition")
        self.taxonomy = taxonomy
        self.params = params or MetaCacheParams()
        self.n_partitions = n_partitions
        self.devices = devices
        self.insert_batch_windows = insert_batch_windows
        self.sketch_workers = sketch_workers
        self.on_progress = on_progress

        self._targets: list[TargetRecord] = []
        self._part_load = np.zeros(n_partitions, dtype=np.int64)
        self._tables: dict[int, _GrowingTable] = {}
        self._pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {
            p: [] for p in range(n_partitions)
        }
        self._pending_windows = {p: 0 for p in range(n_partitions)}
        self._pending_features = 0
        self._n_windows = 0
        self._n_bases = 0
        self._features_sketched = 0
        self._finalized = False
        self._sketcher = None  # started lazily on first add
        self._sketch_meta: dict[int, list[tuple[str, int, int]]] = {}
        self._next_job = 0
        # coalescing buffer for packed sketch jobs: small references
        # accumulate here until one job's worth of bases is reached
        self._pack_codes: list[np.ndarray] = []
        self._pack_meta: list[tuple[str, int, int]] = []
        self._pack_bases = 0

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_database(
        cls,
        db: Database,
        *,
        insert_batch_windows: int = 100_000,
        sketch_workers: int = 1,
        on_progress: Callable[[BuildStats], None] | None = None,
    ) -> "DatabaseBuilder":
        """Open a finished database for extension.

        The builder copies ``db``'s parameters, taxonomy, targets and
        partition loads, and re-materializes each partition's insert
        table by re-inserting its canonical content in sorted-key
        chunks, preserving every feature's location order.  Extending
        with new references then behaves exactly as if the original
        build had continued -- a database built from ``A`` then
        extended with ``B`` is byte-identical to one built from
        ``A + B`` in one shot.  Re-materializing costs O(index) time
        and memory; what extension never repeats is parsing and
        sketching the existing references (the dominant build cost).

        The source ``db`` is not touched -- it keeps serving queries,
        and a build that fails mid-extension leaves it fully intact.
        Returns the new builder.
        """
        from repro.core.io import _condensed_content

        builder = cls(
            db.taxonomy,
            db.params,
            n_partitions=db.n_partitions,
            insert_batch_windows=insert_batch_windows,
            sketch_workers=sketch_workers,
            on_progress=on_progress,
        )
        builder._targets = list(db.targets)
        for t in db.targets:
            builder._part_load[t.partition_id] += t.length
            builder._n_windows += t.n_windows
            builder._n_bases += t.length
        for part in db.partitions:
            features, lengths, locations = _condensed_content(part)
            grown = _GrowingTable(
                builder.params, initial_capacity=max(256, locations.size)
            )
            chunk_keys = _GrowingTable.REBUILD_CHUNK_KEYS
            offsets = np.zeros(features.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            for start in range(0, features.size, chunk_keys):
                stop = min(features.size, start + chunk_keys)
                feats = np.repeat(features[start:stop], lengths[start:stop])
                grown.insert(feats, locations[offsets[start] : offsets[stop]])
            builder._tables[part.partition_id] = grown
            # historical accounting: everything the copied content
            # stores counts as already sketched; drops that happened
            # before a save/condense are not recoverable
            builder._features_sketched += grown.table.stored_values
        return builder

    # ------------------------------------------------------------- ingestion

    def add_reference(self, name: str, codes: np.ndarray, taxon_id: int) -> None:
        """Ingest one reference: sketch, assign a partition, insert.

        Parameters
        ----------
        name:
            target name (typically the FASTA header).
        codes:
            the encoded uint8 sequence; not retained after sketching.
        taxon_id:
            the reference's taxon; must resolve in the taxonomy.

        Raises
        ------
        BuildError
            when ``taxon_id`` is not in the taxonomy (named in the
            message).
        RuntimeError
            when the builder was already finalized.
        """
        self._check_open()
        if taxon_id not in self.taxonomy:
            raise BuildError(
                f"taxon {taxon_id} of target {name!r} not in taxonomy",
                header=name,
                taxon_id=taxon_id,
            )
        if self.sketch_workers > 1:
            # coalesce small references into one packed job so every
            # task pickles as two large arrays instead of N small ones
            self._pack_codes.append(np.asarray(codes, dtype=np.uint8))
            self._pack_meta.append((name, int(codes.size), taxon_id))
            self._pack_bases += int(codes.size)
            if self._pack_bases >= _PACK_JOB_BASES:
                self._submit_pack_job()
        else:
            self._ingest(
                name, int(codes.size), sketch_sequence(codes, self.params.sketch),
                taxon_id,
            )

    def add_fasta(
        self,
        paths: Sequence,
        accession_to_taxon: Mapping[str, int],
        *,
        batch_size: int = 32,
    ) -> None:
        """Stream reference FASTA files into the builder.

        One producer thread parses and encodes the files (in the
        given order) into a bounded queue while this thread -- the
        consumer -- sketches and inserts, so at no point does more
        than a queue's worth of encoded sequences exist in memory.
        Headers resolve to taxa through ``accession_to_taxon`` (the
        role NCBI's ``accession2taxid`` files play); the full header
        becomes the target name.

        Raises
        ------
        BuildError
            when a header's accession has no mapping entry (file and
            header are named in the message) -- silently dropping
            references would corrupt every downstream accuracy
            number.  References ingested before the failure remain in
            the builder.
        RuntimeError
            when the builder was already finalized.
        """
        from repro.core.build import accession_of
        from repro.pipeline.producer import fasta_producer
        from repro.pipeline.queues import ClosableQueue
        from repro.pipeline.scheduler import run_producer_consumer

        self._check_open()
        paths = list(paths)

        def consume(q: ClosableQueue):
            failure: BaseException | None = None
            for batch in q:
                if failure is not None:
                    continue  # drain so the bounded-queue producer can exit
                for header, codes, seq_id in zip(
                    batch.headers, batch.sequences, batch.ids
                ):
                    try:
                        acc = accession_of(header)
                        if acc not in accession_to_taxon:
                            path = paths[seq_id // _FILE_STRIDE]
                            raise BuildError(
                                f"{path}: accession {acc!r} of header "
                                f"{header!r} not in accession_to_taxon "
                                "mapping",
                                file=str(path),
                                header=header,
                            )
                        self.add_reference(
                            header, codes, accession_to_taxon[acc]
                        )
                    except BaseException as exc:  # noqa: BLE001 - re-raised
                        failure = exc
                        break
            if failure is not None:
                raise failure

        # One producer thread walking the files in order: arrival
        # order is file order then in-file order, identical to the
        # one-shot path.  Each per-file fasta_producer call closes the
        # registration it is handed, so the walk registers one per
        # file and closes its own outer registration at the end.
        def produce(q: ClosableQueue):
            try:
                for i, path in enumerate(paths):
                    q.register_producer()
                    fasta_producer(
                        [path],
                        q,
                        batch_size=batch_size,
                        id_offset=i * _FILE_STRIDE,
                    )
            finally:
                q.close_producer()

        run_producer_consumer(producers=[produce], consumers=[consume])

    # --------------------------------------------------------------- internals

    def _ensure_sketcher(self):
        """Start (once) and return the parallel sketch pool."""
        if self._sketcher is None:
            from repro.parallel.sketch import ParallelSketcher

            self._sketcher = ParallelSketcher(
                self.params.sketch, self.sketch_workers
            )
        return self._sketcher

    def _submit_pack_job(self) -> None:
        """Pack the coalescing buffer into one sketch job and submit it."""
        if not self._pack_codes:
            return
        sketcher = self._ensure_sketcher()
        buffer = (
            self._pack_codes[0]
            if len(self._pack_codes) == 1
            else np.concatenate(self._pack_codes)
        )
        offsets = np.zeros(len(self._pack_codes) + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter(
                (c.size for c in self._pack_codes),
                count=len(self._pack_codes),
                dtype=np.int64,
            ),
            out=offsets[1:],
        )
        job = self._next_job
        self._next_job += 1
        self._sketch_meta[job] = self._pack_meta
        self._pack_codes = []
        self._pack_meta = []
        self._pack_bases = 0
        sketcher.submit(job, buffer, offsets)
        if sketcher.inflight >= sketcher.max_inflight:
            self._drain_sketches(sketcher.max_inflight)

    def _drain_sketches(self, below: int) -> None:
        """Ingest pooled sketch results until in-flight drops below cap."""
        sketcher = self._sketcher
        if sketcher is None:
            return
        for job, sketches, counts in sketcher.drain(below):
            row = 0
            for (name, n_bases, taxon_id), n_win in zip(
                self._sketch_meta.pop(job), counts
            ):
                self._ingest(
                    name, n_bases, sketches[row : row + int(n_win)], taxon_id
                )
                row += int(n_win)

    def _ingest(
        self, name: str, n_bases: int, sketches: np.ndarray, taxon_id: int
    ) -> None:
        """Consumer step: assign a partition, buffer, flush in batches."""
        p = int(np.argmin(self._part_load))
        self._part_load[p] += n_bases
        t = len(self._targets)
        n_windows = sketches.shape[0]
        self._targets.append(
            TargetRecord(
                target_id=t,
                name=name,
                taxon_id=taxon_id,
                length=n_bases,
                n_windows=n_windows,
                partition_id=p,
            )
        )
        self._n_windows += n_windows
        self._n_bases += n_bases
        if n_windows:
            window_ids = np.repeat(
                np.arange(n_windows, dtype=np.uint64), sketches.shape[1]
            )
            feats = sketches.reshape(-1)
            valid = feats != SKETCH_PAD
            locs = pack_pairs(
                np.full(valid.sum(), t, dtype=np.uint64), window_ids[valid]
            )
            feats = feats[valid]
            self._features_sketched += feats.size
            self._pending_features += feats.size
            self._pending[p].append((feats, locs))
            self._pending_windows[p] += n_windows
            if self._pending_windows[p] >= self.insert_batch_windows:
                self._flush(p)
        if self.on_progress is not None:
            self.on_progress(self.stats)

    def _flush(self, p: int) -> None:
        """Batched insert of partition ``p``'s buffered pairs."""
        if not self._pending[p]:
            return
        feats = np.concatenate([f for f, _ in self._pending[p]])
        locs = np.concatenate([l for _, l in self._pending[p]])
        self._pending_features -= feats.size
        self._pending[p].clear()
        self._pending_windows[p] = 0
        table = self._tables.get(p)
        if table is None:
            table = _GrowingTable(
                self.params, initial_capacity=max(256, feats.size)
            )
            self._tables[p] = table
        table.insert(feats, locs)

    def _check_open(self) -> None:
        if self._finalized:
            raise RuntimeError("builder already finalized")

    # ---------------------------------------------------------------- results

    @property
    def stats(self) -> BuildStats:
        """Current accounting snapshot (cheap; no flush is forced)."""
        inserted = sum(t.table.stored_values for t in self._tables.values())
        dropped = sum(t.table.dropped_values for t in self._tables.values())
        return BuildStats(
            n_targets=len(self._targets),
            n_windows=self._n_windows,
            n_bases=self._n_bases,
            features_sketched=self._features_sketched,
            features_inserted=inserted,
            features_dropped=dropped,
            features_pending=self._pending_features,
        )

    def finalize(self, condense: bool = True) -> Database:
        """Drain, flush, and assemble the :class:`Database`.

        Outstanding parallel sketch jobs are drained (in order), every
        partition's pending buffer is flushed, the sketch pool (if
        any) is shut down, and the partitions are bound to their
        devices.  ``condense=True`` (default) converts the result to
        the condensed query layout -- what saved/loaded databases use;
        pass ``condense=False`` to keep the build layout (on-the-fly
        mode, insertable by a future ``from_database``).

        Returns the finished database.  The builder is closed
        afterwards: further ``add_*``/``finalize`` calls raise
        ``RuntimeError``.

        Raises
        ------
        repro.gpu.memory.OutOfDeviceMemory
            when a partition's table does not fit its device; callers
            retry with more partitions, exactly like the real
            workflow.
        """
        self._check_open()
        self._submit_pack_job()  # flush the partially-filled packed job
        if self._sketcher is not None:
            try:
                self._drain_sketches(1)
            finally:
                self._sketcher.close()
                self._sketcher = None
        for p in range(self.n_partitions):
            self._flush(p)
        self._finalized = True

        partitions: list[DatabasePartition] = []
        for p in range(self.n_partitions):
            grown = self._tables.get(p)
            if grown is None:  # partition never received a feature
                grown = _GrowingTable(self.params, initial_capacity=256)
                self._tables[p] = grown
            table = grown.table
            device = self.devices[p] if self.devices is not None else None
            alloc_name = f"partition{p}/table"
            if device is not None:
                device.memory.alloc(alloc_name, table.stats().bytes_total)
            partitions.append(
                DatabasePartition(
                    partition_id=p,
                    table=table,
                    device=device,
                    allocation_name=alloc_name,
                )
            )
        db = Database(
            params=self.params,
            taxonomy=self.taxonomy,
            partitions=partitions,
            targets=self._targets,
        )
        if condense:
            db.condense()
        return db

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut down the sketch pool without finalizing (idempotent)."""
        if self._sketcher is not None:
            self._sketcher.close()
            self._sketcher = None

    def __enter__(self) -> "DatabaseBuilder":
        """Enter a ``with`` block; returns the builder itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the sketch pool on ``with`` block exit."""
        self.close()

    def __repr__(self) -> str:
        """Short state summary for interactive sessions."""
        state = "finalized" if self._finalized else "open"
        return (
            f"DatabaseBuilder({len(self._targets)} targets, "
            f"{self.n_partitions} partition(s), {state})"
        )


#: disjoint per-file id ranges keep multi-file arrival order
#: deterministic (file order, then in-file order)
_FILE_STRIDE = 1 << 40

#: bases coalesced into one packed sketch job before submission --
#: large enough that per-job queue/pickle overhead amortizes across
#: many small references, small enough that genome-scale sequences
#: still go out one per job without extra buffering latency
_PACK_JOB_BASES = 1 << 20
