"""Configuration: all MetaCache tunables with the paper's defaults.

Section 5.2: "the default parameters are k-mer length of k = 16
characters, a sketch size of s = 16, a window length of w = 127
characters and a window overlap of k - 1 which results in a window
stride of 127 - 16 + 1 = 112"; Section 4.1: "the maximum number of
locations stored per k-mer is limited to a pre-defined value (254 per
default)"; Section 4.2: "usually 2 <= m <= 4 top hits are enough".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.hashing.sketch import SketchParams

__all__ = ["MetaCacheParams", "ClassificationParams"]


@dataclass(frozen=True)
class ClassificationParams:
    """The top-hit / LCA decision rule (Section 4.2).

    A read is classified when its best candidate reaches ``min_hits``
    sketch-feature hits.  If the runner-up score is below
    ``lca_trigger_fraction`` of the best, the read is assigned the
    best candidate's (sequence-level) taxon; otherwise the lowest
    common ancestor of all candidates scoring at least that fraction
    of the best is used.  Lowering ``min_hits`` trades precision for
    sensitivity, exactly as the paper notes in Section 6.5.
    """

    max_candidates: int = 4  # m, the top-hit list length
    min_hits: int = 5
    lca_trigger_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if self.min_hits < 1:
            raise ValueError("min_hits must be >= 1")
        if not 0.0 < self.lca_trigger_fraction <= 1.0:
            raise ValueError("lca_trigger_fraction must be in (0, 1]")

    def replace(self, **overrides) -> "ClassificationParams":
        """Copy with the given fields overridden, all others kept.

        The canonical way to derive per-query parameters from a
        database's stored defaults: only the overridden knobs change,
        and ``__post_init__`` re-validates the result.
        """
        return dataclasses.replace(self, **overrides)


@dataclass(frozen=True)
class MetaCacheParams:
    """Complete database + classification configuration."""

    sketch: SketchParams = field(default_factory=SketchParams)
    max_locations_per_feature: int = 254
    bucket_size: int = 4
    group_size: int = 4
    max_load_factor: float = 0.8
    classification: ClassificationParams = field(default_factory=ClassificationParams)

    def __post_init__(self) -> None:
        if self.max_locations_per_feature < 1:
            raise ValueError("max_locations_per_feature must be >= 1")

    def replace(self, **overrides) -> "MetaCacheParams":
        """Copy with the given fields overridden, all others kept."""
        return dataclasses.replace(self, **overrides)

    @property
    def window_stride(self) -> int:
        return self.sketch.layout.stride

    def sliding_window_size(self, read_len: int) -> int:
        """Sliding-window size ``sws`` of the top-candidate kernel.

        A read of this length can hit at most ``covered_windows``
        consecutive reference windows, plus one for straddling a
        window boundary (Section 5.6: "determined by the length of
        the respective read").
        """
        return self.sketch.layout.covered_windows(read_len) + 1

    def sliding_window_sizes(self, read_lens) -> "np.ndarray":
        """:meth:`sliding_window_size` for a whole batch at once.

        Vectorized over an int64 length array -- the packed query
        path's replacement for the per-read comprehension, identical
        element-for-element to the scalar method.
        """
        layout = self.sketch.layout
        return layout.covered_windows_batch(read_lens) + 1

    @classmethod
    def small(cls, **overrides) -> "MetaCacheParams":
        """Reduced parameters for tests: k=8, s=4, w=24."""
        defaults = dict(
            sketch=SketchParams(k=8, sketch_size=4, window_size=24),
            max_locations_per_feature=254,
        )
        defaults.update(overrides)
        return cls(**defaults)
