"""Classification rule: top hits -> taxon (Section 4.2).

"The top m counts (top hits) are then used to classify the read. ...
If the difference of the highest and second highest count is above a
threshold, the read is labeled as belonging to the taxon of the
genome corresponding to the maximum count.  Otherwise, all targets
with counts close to the maximum are considered, the lowest common
ancestor of the corresponding taxa is calculated and used to label
the read."

Everything is vectorized; the LCA fold uses the O(1) batch LCA of
:class:`repro.taxonomy.lca.LcaIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import Candidates
from repro.core.config import ClassificationParams
from repro.core.database import Database

__all__ = ["Classification", "classify_reads"]

UNCLASSIFIED = 0  # taxon id 0 never exists (NCBI ids start at 1)


@dataclass
class Classification:
    """Per-read classification outcome.

    ``taxon`` holds the assigned taxon id per read (0 when the read
    could not be classified); ``best_target`` the top candidate's
    target id (-1 if none) -- MetaCache's advantage over Kraken2 of
    reporting *locations* is preserved via ``best_window_first/last``.
    """

    taxon: np.ndarray
    best_target: np.ndarray
    best_window_first: np.ndarray
    best_window_last: np.ndarray
    top_score: np.ndarray

    @property
    def classified_mask(self) -> np.ndarray:
        return self.taxon != UNCLASSIFIED

    @property
    def n_classified(self) -> int:
        return int(self.classified_mask.sum())


def classify_reads(
    db: Database,
    candidates: Candidates,
    params: ClassificationParams | None = None,
) -> Classification:
    """Apply the top-hit / LCA rule to a candidate batch."""
    params = params or db.params.classification
    n = candidates.n_reads
    m = candidates.m
    taxon = np.full(n, UNCLASSIFIED, dtype=np.int64)
    best_target = np.full(n, -1, dtype=np.int64)
    bw_first = np.zeros(n, dtype=np.int64)
    bw_last = np.zeros(n, dtype=np.int64)
    top_score = np.zeros(n, dtype=np.int64)
    if n == 0:
        return Classification(taxon, best_target, bw_first, bw_last, top_score)

    target_taxa = db.target_taxa()
    # dense taxonomy indices per target for batch LCA
    target_dense = np.array(
        [db.taxonomy.index_of(int(t)) for t in target_taxa], dtype=np.int64
    )

    score0 = candidates.score[:, 0]
    valid0 = candidates.valid[:, 0]
    classified = valid0 & (score0 >= params.min_hits)
    if not classified.any():
        return Classification(taxon, best_target, bw_first, bw_last, top_score)

    idx = np.flatnonzero(classified)
    t0 = candidates.target[idx, 0].astype(np.int64)
    best_target[idx] = t0
    bw_first[idx] = candidates.window_first[idx, 0]
    bw_last[idx] = candidates.window_last[idx, 0]
    top_score[idx] = score0[idx]

    # "close to the maximum" candidates trigger the LCA path
    threshold = np.ceil(params.lca_trigger_fraction * score0[idx]).astype(np.int64)
    acc_dense = target_dense[t0]
    ambiguous = np.zeros(idx.size, dtype=bool)
    for col in range(1, m):
        close = (
            candidates.valid[idx, col]
            & (candidates.score[idx, col] >= threshold)
        )
        if not close.any():
            continue
        ambiguous |= close
        sub = np.flatnonzero(close)
        other_dense = target_dense[candidates.target[idx[sub], col].astype(np.int64)]
        acc_dense[sub] = db.lca.lca_batch(acc_dense[sub], other_dense)

    taxa_ids = db.taxonomy.ids[acc_dense]
    taxon[idx] = taxa_ids
    return Classification(taxon, best_target, bw_first, bw_last, top_score)
