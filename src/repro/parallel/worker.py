"""Worker-process entry point of the multi-process query engine.

Each worker attaches the database handle it was spawned with -- a
:class:`~repro.core.database.SharedDatabaseHandle` (shared-memory
blocks) or a :class:`~repro.core.database.FileBackedDatabaseHandle`
(the saved format-v2 directory, memory-mapped).  Both are zero-copy:
the index arrays are mapped, not deserialized.  It then loops
on the task queue running the exact single-process hot path —
:func:`repro.core.query.query_database` followed by
:func:`repro.core.classify.classify_reads` — on each
:class:`~repro.parallel.chunks.ReadChunk` it receives.  Results and
failures are reported through the result queue; the parent never
infers worker state from silence except to detect a crash.

Wire protocol (parent <- worker), all tuples:

- ``("ready", worker_id)``            -- attach succeeded, ready for work;
- ``("ok", ChunkResult)``             -- one chunk classified;
- ``("error", chunk_id, type_name, message, traceback_text)``
                                      -- one chunk failed (worker keeps going);
- ``("init_error", worker_id, message, traceback_text)``
                                      -- attach failed, worker is exiting.

The parent -> worker task queue carries ``(ReadChunk,
ClassificationParams)`` pairs and ``None`` as the shutdown sentinel.
"""

from __future__ import annotations

import time
import traceback

from repro.core.classify import classify_reads
from repro.core.database import FileBackedDatabaseHandle, SharedDatabaseHandle
from repro.core.query import query_database
from repro.parallel.chunks import ChunkResult, ReadChunk

__all__ = ["worker_main"]


def worker_main(
    worker_id: int,
    handle: "SharedDatabaseHandle | FileBackedDatabaseHandle",
    tasks,
    results,
) -> None:
    """Run one worker process until the shutdown sentinel arrives.

    Parameters
    ----------
    worker_id:
        dense index of this worker in the pool (for diagnostics and
        the benchmark's per-worker busy accounting).
    handle:
        cheaply pickled database handle (shared-memory specs, or just
        a directory path for mmap-backed databases); attached here, so
        the worker maps the owner's memory instead of copying it.
    tasks / results:
        ``multiprocessing`` queues as described in the module docs.

    Never raises: every failure is reported on ``results`` and the
    worker either continues (per-chunk errors) or exits (attach
    failure, sentinel).
    """
    try:
        db = handle.attach()
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        results.put(("init_error", worker_id, repr(exc), traceback.format_exc()))
        return
    results.put(("ready", worker_id))
    try:
        while True:
            task = tasks.get()
            if task is None:
                return
            chunk, cparams = task
            try:
                results.put(("ok", _classify_chunk(db, chunk, cparams, worker_id)))
            except BaseException as exc:  # noqa: BLE001 - reported to the parent
                results.put(
                    (
                        "error",
                        chunk.chunk_id,
                        type(exc).__name__,
                        str(exc),
                        traceback.format_exc(),
                    )
                )
    finally:
        db = None
        handle.close()


def _classify_chunk(db, chunk: ReadChunk, cparams, worker_id: int) -> ChunkResult:
    """The single-process hot path, applied to one chunk."""
    t0 = time.perf_counter()
    c0 = time.process_time()
    query_params = db.params.replace(classification=cparams)
    # chunks arrive packed: hand the contiguous batch straight to the
    # query kernels, no per-read list round-trip
    result = query_database(db, chunk.packed, params=query_params)
    cls = classify_reads(db, result.candidates, cparams)
    return ChunkResult(
        chunk_id=chunk.chunk_id,
        headers=chunk.headers,
        classification=cls,
        read_lengths=result.read_lengths,
        stage_seconds=dict(result.stages.stages),
        total_seconds=result.stages.total,
        worker_id=worker_id,
        compute_seconds=time.perf_counter() - t0,
        compute_cpu_seconds=time.process_time() - c0,
    )
