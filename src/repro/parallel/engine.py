"""The multi-process classification engine (worker pool + scheduler).

MetaCache-GPU keeps one resident database per device and streams read
batches through all of them; :class:`ParallelClassifier` is the host
analogue.  The database is shared zero-copy with N spawned worker
processes, each running the unmodified single-process hot path on the
chunks it pulls from a shared task queue.  How it is shared depends on
how it was opened (``Database.sharing_handle``): a database loaded
from a format-v2 directory with ``mmap=True`` is attached by workers
memory-mapping the same index files
(:class:`~repro.core.database.FileBackedDatabaseHandle`, one physical
copy in the page cache); any other database is exported **once** into
shared memory
(:class:`~repro.core.database.SharedDatabaseHandle`).  Dynamic pulling load-balances skewed chunks automatically; an
:class:`~repro.parallel.chunks.OrderedReassembler` restores submission
order, so results are byte-identical to a ``workers=1`` run.

Failure model:

- a chunk that raises inside a worker is reported with its traceback
  and surfaces here as :class:`~repro.errors.PipelineError`;
- a worker that dies (OOM kill, segfault, ...) is detected by exit
  code and surfaces as :class:`~repro.errors.WorkerCrashError`;
- both paths shut the whole pool down (sentinels, then terminate)
  and release the shared blocks before raising, so no orphan
  processes or leaked ``/dev/shm`` segments outlive the engine.

Use :func:`shared_memory_available` to probe whether this machine can
run the engine at all; the API session does, and silently degrades to
single-process classification when it cannot.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import weakref
from typing import Iterable, Iterator

from repro.core.config import ClassificationParams
from repro.core.database import Database
from repro.errors import PipelineError, WorkerCrashError
from repro.parallel.chunks import ChunkResult, OrderedReassembler, ReadChunk
from repro.parallel.worker import worker_main
from repro.pipeline.batch import SequenceBatch
from repro.pipeline.packed import PackedReads

__all__ = ["ParallelClassifier", "shared_memory_available", "reap_processes"]

_POLL_SECONDS = 0.1


def reap_processes(procs: list, grace: float = 5.0) -> None:
    """Join worker processes, escalating to terminate then kill.

    The shared tail of every pool teardown in this repo (the engine
    below, the shard router's replica sets): each process gets up to
    ``grace`` seconds *collectively* to exit after its shutdown
    sentinel, stragglers are terminated, and anything still alive
    after a short post-terminate join is killed.  Never raises --
    teardown must succeed even mid-crash (a process whose ``start()``
    itself failed is skipped: it cannot be joined).
    """
    procs = [p for p in procs if p.is_alive() or p.exitcode is not None]
    deadline = time.monotonic() + grace
    for p in procs:
        p.join(timeout=max(0.0, deadline - time.monotonic()))
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        if p.is_alive():
            p.join(timeout=2.0)
        if p.is_alive():  # pragma: no cover - terminate() nearly always lands
            p.kill()
            p.join(timeout=1.0)


def shared_memory_available() -> bool:
    """True when POSIX shared memory can be created on this platform.

    Probes by creating (and immediately destroying) a one-byte block;
    permission errors, a missing ``/dev/shm`` mount, or seccomp
    filters all report ``False``.  The query engine calls this before
    fanning out and falls back to single-process classification when
    it returns ``False``.
    """
    try:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(create=True, size=1)
        block.close()
        block.unlink()
        return True
    except Exception:  # noqa: BLE001 - any failure means "not available"
        return False


def _shutdown_pool(state: dict, procs: list, tasks, results, handle) -> None:
    """Idempotent pool teardown shared by close() and the GC finalizer.

    Politely sentinels every worker, escalates to terminate/kill on
    stragglers, then releases queues and the shared-memory blocks.
    Never raises: teardown must succeed even mid-crash.
    """
    if state["closed"]:
        return
    state["closed"] = True
    for _ in procs:
        try:
            tasks.put(None)
        except (OSError, ValueError):  # queue already broken
            break
    reap_processes(procs)
    for q in (tasks, results):
        try:
            q.cancel_join_thread()
            q.close()
        except (OSError, ValueError):  # pragma: no cover
            pass
    handle.close()
    handle.unlink()


class ParallelClassifier:
    """A pool of worker processes sharing one zero-copy database.

    Parameters
    ----------
    database:
        the database to serve; mmap-opened databases are attached
        file-backed by workers, anything else is condensed (and
        therefore frozen) by the shared-memory export.
    workers:
        number of worker processes (>= 1).  The pool uses the
        ``spawn`` start method so workers genuinely attach the shared
        blocks rather than inheriting a copy-on-write heap.
    params:
        default decision rule for :meth:`classify_chunks` calls that
        do not pass their own.
    max_inflight:
        chunks outstanding before the feeder blocks on results;
        bounds parent-side memory.  Default ``2 * workers + 2``.
    start_timeout:
        seconds to wait for every worker's attach handshake.

    The engine is a context manager; :meth:`close` (idempotent, also
    invoked by a GC finalizer as a safety net) tears the pool down and
    frees the shared blocks.  After any failed run the engine closes
    itself — check :attr:`closed` before reuse.

    Raises
    ------
    SharedMemoryUnavailableError
        when the database cannot be exported to shared memory.
    WorkerCrashError
        when a worker dies during startup or mid-run.
    """

    def __init__(
        self,
        database: Database,
        workers: int,
        *,
        params: ClassificationParams | None = None,
        max_inflight: int | None = None,
        start_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.params = params or database.params.classification
        self.max_inflight = max_inflight or (2 * workers + 2)
        self._handle = database.sharing_handle()
        self._state = {"closed": False}
        self._running = False
        ctx = mp.get_context("spawn")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(wid, self._handle, self._tasks, self._results),
                daemon=True,
                name=f"metacache-worker-{wid}",
            )
            for wid in range(workers)
        ]
        self._finalizer = weakref.finalize(
            self,
            _shutdown_pool,
            self._state,
            self._procs,
            self._tasks,
            self._results,
            self._handle,
        )
        try:
            for p in self._procs:
                p.start()
            self._await_ready(start_timeout)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- startup

    def _await_ready(self, timeout: float) -> None:
        """Wait for every worker's attach handshake (or fail fast)."""
        ready: set[int] = set()
        deadline = time.monotonic() + timeout
        while len(ready) < self.workers:
            self._check_workers()
            try:
                msg = self._results.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        f"only {len(ready)}/{self.workers} workers ready "
                        f"after {timeout:.0f}s"
                    )
                continue
            if msg[0] == "ready":
                ready.add(msg[1])
            elif msg[0] == "init_error":
                _, wid, message, tb = msg
                raise WorkerCrashError(
                    f"worker {wid} failed to attach the shared database: "
                    f"{message}\n{tb}"
                )

    # ------------------------------------------------------------ main loop

    def classify_chunks(
        self,
        chunks: Iterable[ReadChunk | SequenceBatch | tuple],
        *,
        params: ClassificationParams | None = None,
    ) -> Iterator[ChunkResult]:
        """Stream chunks through the pool, yielding results in order.

        ``chunks`` may contain :class:`ReadChunk` objects,
        :class:`~repro.pipeline.batch.SequenceBatch` instances, or
        ``(headers, sequences)`` / ``(headers, sequences, mates)``
        tuples.  Chunk ids are the arrival positions (0, 1, 2, ...);
        a :class:`ReadChunk` carrying any other ``chunk_id`` is
        rejected with ``ValueError``, because ordered reassembly is
        defined over a contiguous id sequence.  The iterable is
        pulled lazily — at most
        :attr:`max_inflight` chunks are resident between the feeder
        and the reassembly buffer, so arbitrarily long streams run in
        bounded memory.

        Any failure (worker exception, worker death, broken source
        iterable) closes the engine before propagating.

        Raises
        ------
        PipelineError
            a chunk raised inside a worker (original traceback in the
            message).
        WorkerCrashError
            a worker process died without reporting a result.
        """
        if self._state["closed"]:
            raise PipelineError("engine is closed")
        if self._running:
            raise PipelineError("engine is already streaming a chunk run")
        self._running = True
        cparams = params or self.params
        ok = False
        try:
            self._check_workers()  # fail fast on a pool damaged earlier
            yield from self._run(iter(chunks), cparams)
            ok = True
        finally:
            self._running = False
            if not ok:
                # failed or abandoned mid-stream: in-flight chunks can
                # no longer be matched to a caller -- tear down rather
                # than hand the next run a poisoned result queue
                self.close()

    def _run(self, source: Iterator, cparams) -> Iterator[ChunkResult]:
        assembler = OrderedReassembler()
        inflight = 0
        fed = 0
        exhausted = False
        while True:
            while not exhausted and inflight < self.max_inflight:
                try:
                    raw = next(source)
                except StopIteration:
                    exhausted = True
                    break
                self._tasks.put((_coerce_chunk(raw, fed), cparams))
                fed += 1
                inflight += 1
            if exhausted and inflight == 0:
                # every submitted chunk was returned: complete, in order
                return
            result = self._next_result()
            inflight -= 1
            assembler.push(result)
            yield from assembler.drain()

    def _next_result(self) -> ChunkResult:
        """Block for one worker result, watching for crashes meanwhile."""
        while True:
            try:
                msg = self._results.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                self._check_workers()
                continue
            kind = msg[0]
            if kind == "ok":
                return msg[1]
            if kind == "error":
                _, chunk_id, type_name, message, tb = msg
                raise PipelineError(
                    f"worker failed on chunk {chunk_id}: "
                    f"{type_name}: {message}\n--- worker traceback ---\n{tb}"
                )
            # late "ready" duplicates are harmless; anything else is a bug
            if kind not in ("ready",):  # pragma: no cover
                raise PipelineError(f"unexpected worker message {kind!r}")

    def _check_workers(self) -> None:
        """Raise WorkerCrashError if any worker died unexpectedly.

        A worker exits with code 0 only after receiving the shutdown
        sentinel, so any other exit code means the process died with
        work potentially lost.  Note the converse guarantee does not
        rely on polling at all: a run only completes when every
        submitted chunk's result arrived, so a death this check misses
        (e.g. between the last result and the final drain) can never
        truncate output.
        """
        dead = [
            (p.name, p.exitcode)
            for p in self._procs
            if p.exitcode not in (None, 0)
        ]
        if dead:
            names = ", ".join(f"{n} (exit code {c})" for n, c in dead)
            raise WorkerCrashError(f"worker process died: {names}")

    # ------------------------------------------------------------ lifecycle

    @property
    def closed(self) -> bool:
        """True once the pool is torn down (engine no longer usable)."""
        return self._state["closed"]

    def close(self) -> None:
        """Tear the pool down and free shared memory (idempotent)."""
        _shutdown_pool(
            self._state, self._procs, self._tasks, self._results, self._handle
        )

    def __enter__(self) -> "ParallelClassifier":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"ParallelClassifier({self.workers} workers, {state})"


def _coerce_chunk(raw, chunk_id: int) -> ReadChunk:
    """Normalize the chunk shapes :meth:`classify_chunks` accepts."""
    if isinstance(raw, ReadChunk):
        if raw.chunk_id != chunk_id:
            raise ValueError(
                f"chunk arrived at position {chunk_id} but carries id "
                f"{raw.chunk_id}"
            )
        return raw
    if isinstance(raw, SequenceBatch):
        # reuse the batch's cached packed form (built on the producer
        # thread) instead of re-deriving it from the list view
        return ReadChunk(
            chunk_id=chunk_id, headers=list(raw.headers), packed=raw.packed()
        )
    if isinstance(raw, tuple) and len(raw) in (2, 3):
        if len(raw) == 2 and isinstance(raw[1], PackedReads):
            return ReadChunk(chunk_id=chunk_id, headers=list(raw[0]), packed=raw[1])
        headers, sequences = list(raw[0]), list(raw[1])
        mates = list(raw[2]) if len(raw) == 3 and raw[2] is not None else None
        return ReadChunk(
            chunk_id=chunk_id, headers=headers, sequences=sequences, mates=mates
        )
    raise TypeError(
        f"unsupported chunk type {type(raw).__name__} (expected ReadChunk, "
        "SequenceBatch, (headers, PackedReads) or (headers, sequences[, mates]))"
    )
