"""Work units of the multi-process query engine.

A :class:`ReadChunk` is what travels parent -> worker: a slice of the
input read stream with its position (``chunk_id``) in that stream.  A
:class:`ChunkResult` travels worker -> parent: the vectorized
classification arrays for one chunk plus per-stage timings.  Results
arrive in *completion* order; :class:`OrderedReassembler` restores
submission order so downstream sinks observe exactly the sequence a
single-process run would produce.

Chunks deliberately carry raw arrays, not per-read record objects:
records require taxonomy name lookups, which the parent performs with
its own database so the parallel path shares every byte of the
serial path's formatting code.  Since the packed-batch refactor a
chunk's read payload is one :class:`~repro.pipeline.packed.PackedReads`
-- the parent pickles 2-3 large contiguous arrays per chunk instead of
N small per-read objects, which is where most of the old IPC
serialization time went.  The ``sequences``/``mates`` list properties
remain as zero-copy adapter views for legacy call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.classify import Classification
from repro.pipeline.packed import PackedReads

__all__ = ["ReadChunk", "ChunkResult", "OrderedReassembler"]


class ReadChunk:
    """One batch of encoded reads scheduled onto a worker.

    ``chunk_id`` is the zero-based position of this chunk in the input
    stream (the reassembly key); ``headers`` has one entry per logical
    read.  The read payload is stored packed (``self.packed``); the
    constructor accepts either a pre-built :class:`PackedReads` or the
    legacy ``sequences``/``mates`` lists, which it packs on entry.
    ``sequences``/``mates`` stay available as view properties.
    """

    __slots__ = ("chunk_id", "headers", "packed")

    def __init__(
        self,
        chunk_id: int,
        headers: list[str],
        sequences: Sequence[np.ndarray] | None = None,
        mates: Sequence[np.ndarray] | None = None,
        packed: PackedReads | None = None,
    ) -> None:
        if packed is not None:
            if sequences is not None or mates is not None:
                raise ValueError(
                    f"chunk {chunk_id}: pass either packed or "
                    "sequences/mates, not both"
                )
        else:
            if sequences is None:
                raise ValueError(
                    f"chunk {chunk_id}: needs sequences or packed"
                )
            if len(headers) != len(sequences):
                raise ValueError(
                    f"chunk {chunk_id}: {len(headers)} headers for "
                    f"{len(sequences)} sequences"
                )
            if mates is not None and len(mates) != len(sequences):
                raise ValueError(
                    f"chunk {chunk_id}: {len(mates)} mates for "
                    f"{len(sequences)} sequences"
                )
            packed = PackedReads.from_reads(sequences, mates)
        if len(headers) != packed.n_reads:
            raise ValueError(
                f"chunk {chunk_id}: {len(headers)} headers for "
                f"{packed.n_reads} reads"
            )
        self.chunk_id = chunk_id
        self.headers = headers
        self.packed = packed

    @property
    def sequences(self) -> list[np.ndarray]:
        """Legacy list view of the reads (first mates when paired)."""
        return self.packed.to_lists()[0]

    @property
    def mates(self) -> list[np.ndarray] | None:
        """Legacy list view of the second mates (``None`` single-end)."""
        return self.packed.to_lists()[1]

    def __len__(self) -> int:
        return self.packed.n_reads

    def __getstate__(self):
        return (self.chunk_id, self.headers, self.packed)

    def __setstate__(self, state) -> None:
        self.chunk_id, self.headers, self.packed = state

    def __repr__(self) -> str:
        kind = "paired" if self.packed.paired else "single"
        return (
            f"ReadChunk(id={self.chunk_id}, {self.packed.n_reads} {kind} "
            f"reads, {self.packed.total_bases} bases)"
        )


@dataclass
class ChunkResult:
    """One chunk's classification, produced by a worker process.

    Contains everything the parent needs to emit typed records and
    accounting identical to the single-process path: the vectorized
    :class:`~repro.core.classify.Classification`, per-read total
    lengths, and the query pipeline's per-stage seconds.
    ``worker_id``, ``compute_seconds`` (wall inside the worker) and
    ``compute_cpu_seconds`` (CPU time, immune to core timesharing)
    feed the scaling benchmark's load-balance model.
    """

    chunk_id: int
    headers: list[str]
    classification: Classification
    read_lengths: np.ndarray
    stage_seconds: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    worker_id: int = -1
    compute_seconds: float = 0.0
    compute_cpu_seconds: float = 0.0

    @property
    def n_reads(self) -> int:
        """Reads (or read pairs) classified in this chunk."""
        return len(self.headers)


class OrderedReassembler:
    """Restores submission order over out-of-order chunk results.

    ``push`` buffers a result; ``drain`` yields every result whose
    chunk id continues the contiguous prefix ending at the last
    drained id.  Memory is bounded by the engine's in-flight cap, as
    at most that many results can be buffered ahead of a straggler.
    """

    def __init__(self) -> None:
        self._buffer: dict[int, ChunkResult] = {}
        self._next = 0

    def push(self, result: ChunkResult) -> None:
        """Buffer one completed chunk (rejects duplicate/rewound ids)."""
        if result.chunk_id < self._next or result.chunk_id in self._buffer:
            raise ValueError(f"duplicate chunk id {result.chunk_id}")
        self._buffer[result.chunk_id] = result

    def drain(self) -> Iterator[ChunkResult]:
        """Yield buffered results that extend the in-order prefix."""
        while self._next in self._buffer:
            yield self._buffer.pop(self._next)
            self._next += 1

    @property
    def pending(self) -> int:
        """Number of buffered results waiting on an earlier chunk."""
        return len(self._buffer)

    @property
    def next_id(self) -> int:
        """The chunk id the next drained result must carry."""
        return self._next
