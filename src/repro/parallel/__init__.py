"""``repro.parallel`` -- the multi-process, shared-memory query engine.

The paper scales classification by keeping one database resident per
GPU and streaming batches through all devices at once; this package
is the host-side counterpart.  A loaded
:class:`~repro.core.database.Database` is shared zero-copy with N
worker processes -- a database opened with ``mmap=True`` from a
format-v2 directory is memory-mapped by every worker straight from
its files (:class:`~repro.core.database.FileBackedDatabaseHandle`,
re-exported here, shares through the page cache); any other database
is exported once into ``multiprocessing.shared_memory`` blocks
(:class:`~repro.core.database.SharedDatabaseHandle`).  Either way the
index exists exactly once in physical memory no matter the worker
count.  Chunks of reads
fan out over a task queue, are classified by the unmodified
single-process hot path, and are reassembled in submission order --
output is byte-identical to a single-process run.

Most callers never touch this package directly: pass ``workers=N`` to
:meth:`repro.api.MetaCache.open` (or to
:meth:`~repro.api.QuerySession.classify_files`) and the facade drives
a :class:`ParallelClassifier` internally, falling back to one process
where :func:`shared_memory_available` says shared memory cannot be
used.  Direct use looks like::

    from repro.parallel import ParallelClassifier

    with ParallelClassifier(database, workers=4) as engine:
        for result in engine.classify_chunks(batches):
            ...  # ChunkResults, in submission order

The *build* side has a sibling pool: :class:`ParallelSketcher` fans
encoded reference sequences out over sketch worker processes for the
streaming :class:`repro.core.builder.DatabaseBuilder` (the paper's
two-phase construction pipeline); most callers reach it through
``build_workers=N`` on the facade's build entry points.

Layering note: this package sits *below* ``repro.api`` (it depends
only on ``repro.core`` and ``repro.pipeline``); the facade converts
:class:`~repro.parallel.chunks.ChunkResult` arrays into typed records.
"""

from repro.core.database import (
    FileBackedDatabaseHandle,
    SharedArraySpec,
    SharedDatabaseHandle,
    SharedPartitionSpec,
)
from repro.parallel.chunks import ChunkResult, OrderedReassembler, ReadChunk
from repro.parallel.engine import ParallelClassifier, shared_memory_available
from repro.parallel.sketch import ParallelSketcher, sketch_worker_main
from repro.parallel.worker import worker_main

__all__ = [
    "ParallelClassifier",
    "ParallelSketcher",
    "sketch_worker_main",
    "ReadChunk",
    "ChunkResult",
    "OrderedReassembler",
    "SharedDatabaseHandle",
    "FileBackedDatabaseHandle",
    "SharedArraySpec",
    "SharedPartitionSpec",
    "shared_memory_available",
    "worker_main",
]
