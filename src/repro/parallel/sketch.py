"""The parallel sketch phase of the build pipeline (worker pool).

MetaCache-GPU's database construction is a two-phase producer/consumer
pipeline (Fig. 2): producers parse and *sketch* reference sequences in
parallel while a consumer performs ordered batched inserts into the
hash table.  :class:`ParallelSketcher` is the host-side sketch phase:
``N`` spawned worker processes each run
:func:`repro.hashing.sketch.sketch_packed_segments` on the *packed*
jobs they pull from a shared task queue -- one contiguous uint8 code
buffer holding one or more reference sequences plus its int64 offset
array, so a job pickles as two large arrays however many sequences it
coalesces -- and the caller (the consumer —
:class:`repro.core.builder.DatabaseBuilder`) drains the per-window
sketch matrices back **in submission order**, so the insert stream is
bit-identical to a serial build no matter how workers interleave.

The pool mirrors :class:`repro.parallel.engine.ParallelClassifier`'s
lifecycle and failure model on a smaller surface:

- workers send an attach/ready handshake before the first job is
  considered schedulable, so a broken spawn environment fails fast;
- a job that raises inside a worker surfaces as
  :class:`~repro.errors.PipelineError` carrying the worker traceback;
- a worker that dies (OOM kill, segfault, ...) surfaces as
  :class:`~repro.errors.WorkerCrashError`;
- both paths shut the whole pool down, so no orphan processes survive
  a failed build.

Jobs are submitted with dense ids (0, 1, 2, ...); ``max_inflight``
bounds how many sequences are pickled into the queues at once, which
is what keeps the streaming build's peak memory independent of the
corpus size even with many workers.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
import weakref
from typing import Iterator

import numpy as np

from repro.errors import PipelineError, WorkerCrashError
from repro.hashing.sketch import SketchParams, sketch_packed_segments

__all__ = ["ParallelSketcher", "sketch_worker_main"]

_POLL_SECONDS = 0.1


def sketch_worker_main(worker_id: int, params: SketchParams, tasks, results) -> None:
    """Run one sketch worker until the shutdown sentinel arrives.

    Parameters
    ----------
    worker_id:
        dense index of this worker in the pool (for diagnostics).
    params:
        the sketching configuration every job uses (k, s, w are
        database-wide constants, so they travel once at spawn).
    tasks / results:
        ``multiprocessing`` queues.  Tasks are ``(job_id, buffer,
        offsets)`` packed batches (one contiguous uint8 code buffer,
        segment ``i`` at ``buffer[offsets[i]:offsets[i+1]]``) and
        ``None`` as the shutdown sentinel; results are
        ``("ready", worker_id)``, ``("ok", job_id, sketches, counts)``
        with the concatenated ``(n_windows, s)`` uint64 sketch matrix
        and the per-segment window counts to split it by, or
        ``("error", job_id, type_name, message, traceback_text)``.

    Never raises: every failure is reported on ``results`` and the
    worker either continues (per-job errors) or exits (sentinel).
    """
    results.put(("ready", worker_id))
    while True:
        task = tasks.get()
        if task is None:
            return
        job_id, buffer, offsets = task
        try:
            sketches, counts = sketch_packed_segments(buffer, offsets, params)
            results.put(("ok", job_id, sketches, counts))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            results.put(
                (
                    "error",
                    job_id,
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
            )


def _shutdown_sketch_pool(state: dict, procs: list, tasks, results) -> None:
    """Idempotent pool teardown shared by close() and the GC finalizer.

    Sentinels every worker, escalates to terminate/kill on stragglers,
    then releases the queues.  Never raises: teardown must succeed
    even mid-crash.
    """
    if state["closed"]:
        return
    state["closed"] = True
    for _ in procs:
        try:
            tasks.put(None)
        except (OSError, ValueError):  # queue already broken
            break
    deadline = time.monotonic() + 5.0
    for p in procs:
        p.join(timeout=max(0.0, deadline - time.monotonic()))
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        if p.is_alive():
            p.join(timeout=2.0)
        if p.is_alive():  # pragma: no cover - terminate() nearly always lands
            p.kill()
            p.join(timeout=1.0)
    for q in (tasks, results):
        try:
            q.cancel_join_thread()
            q.close()
        except (OSError, ValueError):  # pragma: no cover
            pass


class ParallelSketcher:
    """A pool of worker processes sketching reference sequences.

    The sketch phase of the two-phase build pipeline: the caller
    submits packed jobs (one contiguous code buffer covering one or
    more reference sequences) with dense ids and drains
    ``(job_id, sketches, counts)`` results strictly **in submission
    order** via :meth:`drain` / :meth:`drain_all`, so the downstream
    insert stream is identical to a serial build.

    Parameters
    ----------
    params:
        sketching configuration shared by every job.
    workers:
        number of worker processes (>= 1); the pool uses the
        ``spawn`` start method, like the query engine.
    max_inflight:
        jobs outstanding before :meth:`submit` refuses more work
        (callers interleave :meth:`drain`); bounds the sequences
        pickled into the queues.  Default ``2 * workers + 2``.
    start_timeout:
        seconds to wait for every worker's ready handshake.

    The pool is a context manager; :meth:`close` (idempotent, also
    invoked by a GC finalizer as a safety net) tears it down.

    Raises
    ------
    WorkerCrashError
        when a worker dies during startup or mid-run.
    PipelineError
        when a job raises inside a worker.
    """

    def __init__(
        self,
        params: SketchParams,
        workers: int,
        *,
        max_inflight: int | None = None,
        start_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.params = params
        self.max_inflight = max_inflight or (2 * workers + 2)
        self._state = {"closed": False}
        self._inflight = 0
        self._next_submit = 0
        self._next_drain = 0
        self._buffer: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        ctx = mp.get_context("spawn")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=sketch_worker_main,
                args=(wid, params, self._tasks, self._results),
                daemon=True,
                name=f"metacache-sketcher-{wid}",
            )
            for wid in range(workers)
        ]
        self._finalizer = weakref.finalize(
            self,
            _shutdown_sketch_pool,
            self._state,
            self._procs,
            self._tasks,
            self._results,
        )
        try:
            for p in self._procs:
                p.start()
            self._await_ready(start_timeout)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- startup

    def _await_ready(self, timeout: float) -> None:
        """Wait for every worker's ready handshake (or fail fast)."""
        ready: set[int] = set()
        deadline = time.monotonic() + timeout
        while len(ready) < self.workers:
            self._check_workers()
            try:
                msg = self._results.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        f"only {len(ready)}/{self.workers} sketch workers "
                        f"ready after {timeout:.0f}s"
                    )
                continue
            if msg[0] == "ready":
                ready.add(msg[1])

    # ---------------------------------------------------------- submission

    @property
    def inflight(self) -> int:
        """Jobs submitted but not yet drained (includes buffered)."""
        return self._inflight

    def submit(
        self,
        job_id: int,
        buffer: np.ndarray,
        offsets: np.ndarray | None = None,
    ) -> None:
        """Queue one packed job (one or more sequences) for sketching.

        ``buffer`` is the contiguous uint8 code buffer; ``offsets``
        (int64, ``n_segments + 1``) delimits the sequences inside it
        and defaults to the single-segment job covering the whole
        buffer.  ``job_id`` must continue the dense submission
        sequence (0, 1, 2, ...) — ordered draining is defined over
        contiguous ids — and the pool must have in-flight headroom
        (drain first when :attr:`inflight` reaches
        :attr:`max_inflight`).

        Raises ``ValueError`` on an out-of-sequence id or a full
        pool, ``PipelineError`` when the pool is closed.
        """
        if self._state["closed"]:
            raise PipelineError("sketch pool is closed")
        if job_id != self._next_submit:
            raise ValueError(
                f"job submitted as {job_id}, expected {self._next_submit}"
            )
        if self._inflight >= self.max_inflight:
            raise ValueError("sketch pool is full; drain results first")
        if offsets is None:
            offsets = np.array([0, buffer.size], dtype=np.int64)
        self._tasks.put((job_id, buffer, offsets))
        self._next_submit += 1
        self._inflight += 1

    # ------------------------------------------------------------ draining

    def drain(
        self, below: int
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield in-order results until fewer than ``below`` are in flight.

        Blocks on the result queue as needed; watches for worker
        crashes while waiting.  Yields ``(job_id, sketches, counts)``
        with contiguous ids continuing the last drained job;
        ``counts[i]`` rows of the concatenated ``sketches`` matrix
        belong to the job's segment ``i``.

        Raises
        ------
        PipelineError
            a job raised inside a worker (original traceback in the
            message); the pool is closed before raising.
        WorkerCrashError
            a worker process died; the pool is closed before raising.
        """
        try:
            while self._inflight >= max(1, below):
                while self._next_drain not in self._buffer:
                    self._pump()
                sketches, counts = self._buffer.pop(self._next_drain)
                job = self._next_drain
                self._next_drain += 1
                self._inflight -= 1
                yield job, sketches, counts
        except BaseException:
            self.close()
            raise

    def drain_all(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield every outstanding result, in submission order.

        Same contract and failure behavior as :meth:`drain`; used by
        the consumer's flush/finalize path.
        """
        yield from self.drain(1)

    def _pump(self) -> None:
        """Move one message from the result queue into the buffer."""
        try:
            msg = self._results.get(timeout=_POLL_SECONDS)
        except queue_mod.Empty:
            self._check_workers()
            return
        kind = msg[0]
        if kind == "ok":
            _, job_id, sketches, counts = msg
            self._buffer[job_id] = (sketches, counts)
        elif kind == "error":
            _, job_id, type_name, message, tb = msg
            raise PipelineError(
                f"sketch worker failed on job {job_id}: "
                f"{type_name}: {message}\n--- worker traceback ---\n{tb}"
            )
        elif kind not in ("ready",):  # pragma: no cover - protocol bug
            raise PipelineError(f"unexpected sketch worker message {kind!r}")

    def _check_workers(self) -> None:
        """Raise WorkerCrashError if any worker died unexpectedly."""
        dead = [
            (p.name, p.exitcode)
            for p in self._procs
            if p.exitcode not in (None, 0)
        ]
        if dead:
            names = ", ".join(f"{n} (exit code {c})" for n, c in dead)
            raise WorkerCrashError(f"sketch worker process died: {names}")

    # ------------------------------------------------------------ lifecycle

    @property
    def closed(self) -> bool:
        """True once the pool is torn down (no longer usable)."""
        return self._state["closed"]

    def close(self) -> None:
        """Tear the pool down (idempotent)."""
        _shutdown_sketch_pool(
            self._state, self._procs, self._tasks, self._results
        )

    def __enter__(self) -> "ParallelSketcher":
        """Enter a ``with`` block; returns the pool itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the pool on ``with`` block exit."""
        self.close()

    def __repr__(self) -> str:
        """Short state summary: worker count and open/closed."""
        state = "closed" if self.closed else "open"
        return f"ParallelSketcher({self.workers} workers, {state})"
