"""High-level sketching: sequence/read -> per-window minhash sketches.

Composes the k-mer, windowing and minhash layers into the two shapes
the pipeline needs:

- :func:`sketch_sequence` -- all windows of one reference sequence
  (build phase, Fig. 1 step 1);
- :func:`sketch_reads` -- all windows of a *batch* of reads mapped to
  their read ids (query phase).  Reads shorter than the window size
  yield a single window; longer reads split into several windows, as
  Section 6.2 describes for MiSeq.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genomics.kmers import canonical_kmers, kmer_validity, pack_kmers
from repro.genomics.windows import WindowLayout
from repro.hashing.hashes import hash_kmers_h1
from repro.hashing.minhash import SKETCH_PAD, sketch_windows_batch, window_hash_matrix

__all__ = ["SketchParams", "sketch_sequence", "sketch_reads", "position_hashes"]


@dataclass(frozen=True)
class SketchParams:
    """Sketching configuration: k-mer length, sketch size, window size.

    Defaults are the paper's: k=16, s=16, w=127 (stride 112).
    """

    k: int = 16
    sketch_size: int = 16
    window_size: int = 127

    def __post_init__(self) -> None:
        if not 1 <= self.k <= 32:
            raise ValueError(f"k must be in [1,32], got {self.k}")
        if self.sketch_size < 1:
            raise ValueError("sketch_size must be >= 1")
        if self.window_size < self.k:
            raise ValueError("window_size must be >= k")

    @property
    def layout(self) -> WindowLayout:
        return WindowLayout(k=self.k, window_size=self.window_size)

    @property
    def kmers_per_window(self) -> int:
        return self.window_size - self.k + 1


def position_hashes(codes: np.ndarray, params: SketchParams) -> np.ndarray:
    """h1 of the canonical k-mer at every sequence position.

    Positions whose k-mer covers an ambiguous base get ``SKETCH_PAD``
    so they are transparently ignored by the sketch selection.
    Length is ``len(codes) - k + 1`` (empty for short sequences).
    """
    kmers = pack_kmers(codes, params.k)
    if kmers.size == 0:
        return kmers  # empty uint64
    hashes = hash_kmers_h1(canonical_kmers(kmers, params.k))
    valid = kmer_validity(codes, params.k)
    return np.where(valid, hashes, SKETCH_PAD)


def sketch_sequence(codes: np.ndarray, params: SketchParams) -> np.ndarray:
    """Sketch every window of a reference sequence.

    Returns an ``(n_windows, s)`` uint64 matrix, padded with
    ``SKETCH_PAD``.  Row ``i`` is the sketch of window ``i``.
    """
    hashes = position_hashes(codes, params)
    layout = params.layout
    starts, ends = layout.window_slices(codes.size)
    if starts.size == 0:
        return np.full((0, params.sketch_size), SKETCH_PAD, dtype=np.uint64)
    lengths = ends - starts - params.k + 1
    matrix = window_hash_matrix(hashes, starts, lengths, params.kmers_per_window)
    return sketch_windows_batch(matrix, params.sketch_size)


def sketch_reads(
    sequences: list[np.ndarray],
    params: SketchParams,
    read_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sketch a batch of reads.

    Parameters
    ----------
    sequences:
        encoded reads.  For paired-end data pass mate 1 and mate 2 as
        separate entries sharing a ``read_ids`` value, mirroring how
        MetaCache queries both mates into one result (Fig. 1 step 2).
    read_ids:
        id per sequence (defaults to 0..n-1).

    Returns
    -------
    (sketches, window_read_ids):
        sketches is (total_windows, s) uint64; window_read_ids maps
        each window row to its read id.  Reads shorter than ``k``
        contribute no windows.
    """
    if read_ids is None:
        read_ids = np.arange(len(sequences), dtype=np.int64)
    else:
        read_ids = np.asarray(read_ids, dtype=np.int64)
        if read_ids.size != len(sequences):
            raise ValueError("read_ids length must match sequences")
    layout = params.layout
    all_hashes: list[np.ndarray] = []
    starts_list: list[np.ndarray] = []
    lengths_list: list[np.ndarray] = []
    win_read: list[np.ndarray] = []
    offset = 0
    for seq, rid in zip(sequences, read_ids):
        h = position_hashes(seq, params)
        if h.size == 0:
            continue
        starts, ends = layout.window_slices(seq.size)
        all_hashes.append(h)
        starts_list.append(starts + offset)
        lengths_list.append(ends - starts - params.k + 1)
        win_read.append(np.full(starts.size, rid, dtype=np.int64))
        offset += h.size
    if not all_hashes:
        return (
            np.full((0, params.sketch_size), SKETCH_PAD, dtype=np.uint64),
            np.zeros(0, dtype=np.int64),
        )
    hashes = np.concatenate(all_hashes)
    starts = np.concatenate(starts_list)
    lengths = np.concatenate(lengths_list)
    matrix = window_hash_matrix(hashes, starts, lengths, params.kmers_per_window)
    sketches = sketch_windows_batch(matrix, params.sketch_size)
    return sketches, np.concatenate(win_read)
