"""High-level sketching: sequence/read -> per-window minhash sketches.

Composes the k-mer, windowing and minhash layers into the shapes the
pipeline needs:

- :func:`sketch_sequence` -- all windows of one reference sequence
  (build phase, Fig. 1 step 1);
- :func:`sketch_reads_packed` -- all windows of a *packed* batch (one
  contiguous code buffer + segment offsets) mapped to read ids: the
  query-phase hot path, pure array ops with no per-read Python loop,
  the host analogue of the GPU's batched warp kernel (Section 5.2).
  Reads shorter than the window size yield a single window; longer
  reads split into several windows, as Section 6.2 describes for
  MiSeq.
- :func:`sketch_packed_segments` -- the same kernel shaped for the
  build phase's parallel sketch pool: several reference sequences per
  job, per-segment window counts returned alongside.
- :func:`sketch_reads` -- thin list-of-arrays adapter over the packed
  kernel (packs, then calls :func:`sketch_reads_packed`).
- :func:`sketch_reads_loop` -- the pre-packing per-read reference
  implementation, kept verbatim to anchor the packed-equivalence
  property harness (``tests/test_packed_equivalence.py``) and the
  packed-vs-legacy benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genomics.kmers import canonical_kmers, kmer_validity, pack_kmers
from repro.genomics.windows import WindowLayout
from repro.hashing.hashes import hash_kmers_h1
from repro.hashing.minhash import SKETCH_PAD, sketch_windows_batch, window_hash_matrix

__all__ = [
    "SketchParams",
    "sketch_sequence",
    "sketch_reads",
    "sketch_reads_packed",
    "sketch_reads_loop",
    "sketch_packed_segments",
    "position_hashes",
]


@dataclass(frozen=True)
class SketchParams:
    """Sketching configuration: k-mer length, sketch size, window size.

    Defaults are the paper's: k=16, s=16, w=127 (stride 112).
    """

    k: int = 16
    sketch_size: int = 16
    window_size: int = 127

    def __post_init__(self) -> None:
        if not 1 <= self.k <= 32:
            raise ValueError(f"k must be in [1,32], got {self.k}")
        if self.sketch_size < 1:
            raise ValueError("sketch_size must be >= 1")
        if self.window_size < self.k:
            raise ValueError("window_size must be >= k")

    @property
    def layout(self) -> WindowLayout:
        return WindowLayout(k=self.k, window_size=self.window_size)

    @property
    def kmers_per_window(self) -> int:
        return self.window_size - self.k + 1


def position_hashes(codes: np.ndarray, params: SketchParams) -> np.ndarray:
    """h1 of the canonical k-mer at every sequence position.

    Positions whose k-mer covers an ambiguous base get ``SKETCH_PAD``
    so they are transparently ignored by the sketch selection.
    Length is ``len(codes) - k + 1`` (empty for short sequences).
    """
    kmers = pack_kmers(codes, params.k)
    if kmers.size == 0:
        return kmers  # empty uint64
    hashes = hash_kmers_h1(canonical_kmers(kmers, params.k))
    valid = kmer_validity(codes, params.k)
    return np.where(valid, hashes, SKETCH_PAD)


def sketch_sequence(codes: np.ndarray, params: SketchParams) -> np.ndarray:
    """Sketch every window of a reference sequence.

    Returns an ``(n_windows, s)`` uint64 matrix, padded with
    ``SKETCH_PAD``.  Row ``i`` is the sketch of window ``i``.
    """
    hashes = position_hashes(codes, params)
    layout = params.layout
    starts, ends = layout.window_slices(codes.size)
    if starts.size == 0:
        return np.full((0, params.sketch_size), SKETCH_PAD, dtype=np.uint64)
    lengths = ends - starts - params.k + 1
    matrix = window_hash_matrix(hashes, starts, lengths, params.kmers_per_window)
    return sketch_windows_batch(matrix, params.sketch_size)


def _empty_sketch_result(params: SketchParams) -> tuple[np.ndarray, np.ndarray]:
    """The zero-window result shared by every batch sketcher."""
    return (
        np.full((0, params.sketch_size), SKETCH_PAD, dtype=np.uint64),
        np.zeros(0, dtype=np.int64),
    )


def sketch_reads_packed(
    buffer: np.ndarray,
    offsets: np.ndarray,
    params: SketchParams,
    read_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sketch a packed batch of reads: the contiguous hot-path kernel.

    Parameters
    ----------
    buffer / offsets:
        the :class:`~repro.pipeline.packed.PackedReads` layout: one
        contiguous uint8 code buffer; segment ``i`` is
        ``buffer[offsets[i]:offsets[i+1]]``.  For paired-end data the
        two mates are adjacent segments sharing a ``read_ids`` value,
        mirroring how MetaCache queries both mates into one result
        (Fig. 1 step 2).
    read_ids:
        id per segment (defaults to 0..n_segments-1).

    Returns
    -------
    (sketches, window_read_ids):
        sketches is (total_windows, s) uint64; window_read_ids maps
        each window row to its read id.  Segments shorter than ``k``
        contribute no windows.

    Bit-identical to :func:`sketch_reads_loop` over the same reads:
    position hashes are computed once over the whole buffer, and every
    window gather stays inside its segment (a window's last k-mer
    starts at ``offsets[i+1] - k`` at the latest), so the k-mers that
    straddle segment boundaries are computed but never referenced.
    """
    buffer = np.asarray(buffer, dtype=np.uint8)
    offsets = np.asarray(offsets, dtype=np.int64)
    n_segments = offsets.size - 1
    if read_ids is None:
        read_ids = np.arange(n_segments, dtype=np.int64)
    else:
        read_ids = np.asarray(read_ids, dtype=np.int64)
        if read_ids.size != n_segments:
            raise ValueError("read_ids length must match segment count")
    _, segment_ids, starts_local, ends_local = (
        params.layout.packed_window_slices(np.diff(offsets))
    )
    if segment_ids.size == 0:
        return _empty_sketch_result(params)
    hashes = position_hashes(buffer, params)
    starts = offsets[:-1][segment_ids] + starts_local
    lengths = ends_local - starts_local - params.k + 1
    matrix = window_hash_matrix(hashes, starts, lengths, params.kmers_per_window)
    sketches = sketch_windows_batch(matrix, params.sketch_size)
    return sketches, read_ids[segment_ids]


def sketch_packed_segments(
    buffer: np.ndarray, offsets: np.ndarray, params: SketchParams
) -> tuple[np.ndarray, np.ndarray]:
    """Sketch several packed reference sequences in one kernel call.

    The build-phase shape of the packed kernel: returns
    ``(sketches, window_counts)`` where ``window_counts[i]`` is the
    number of sketch rows produced by segment ``i``, so a caller can
    split the concatenated matrix back per sequence.  Row blocks are
    bit-identical to running :func:`sketch_sequence` on each segment
    separately, which is what keeps parallel packed builds
    byte-identical to serial ones.
    """
    buffer = np.asarray(buffer, dtype=np.uint8)
    offsets = np.asarray(offsets, dtype=np.int64)
    counts, segment_ids, starts_local, ends_local = (
        params.layout.packed_window_slices(np.diff(offsets))
    )
    if segment_ids.size == 0:
        return (
            np.full((0, params.sketch_size), SKETCH_PAD, dtype=np.uint64),
            counts,
        )
    hashes = position_hashes(buffer, params)
    starts = offsets[:-1][segment_ids] + starts_local
    lengths = ends_local - starts_local - params.k + 1
    matrix = window_hash_matrix(hashes, starts, lengths, params.kmers_per_window)
    return sketch_windows_batch(matrix, params.sketch_size), counts


def sketch_reads(
    sequences: list[np.ndarray],
    params: SketchParams,
    read_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sketch a batch of reads given as a list of arrays.

    The thin adapter keeping the legacy list-of-arrays call sites
    working: concatenates the reads into the packed layout and calls
    :func:`sketch_reads_packed`.  Same result contract; hot paths
    that already hold a packed batch should call the packed kernel
    directly and skip the concatenation.
    """
    n = len(sequences)
    if n == 0:
        return _empty_sketch_result(params)
    buffer = np.concatenate([np.asarray(s, dtype=np.uint8) for s in sequences])
    sizes = np.fromiter((s.size for s in sequences), count=n, dtype=np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return sketch_reads_packed(buffer, offsets, params, read_ids)


def sketch_reads_loop(
    sequences: list[np.ndarray],
    params: SketchParams,
    read_ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The pre-packing per-read reference implementation.

    Kept verbatim (one Python iteration per read) as the behavioral
    anchor: ``tests/test_packed_equivalence.py`` asserts
    :func:`sketch_reads_packed` is byte-identical to this at every
    boundary, and the micro-pipeline benchmark measures the packed
    kernel's speedup against it.  Not a production path.
    """
    if read_ids is None:
        read_ids = np.arange(len(sequences), dtype=np.int64)
    else:
        read_ids = np.asarray(read_ids, dtype=np.int64)
        if read_ids.size != len(sequences):
            raise ValueError("read_ids length must match sequences")
    layout = params.layout
    all_hashes: list[np.ndarray] = []
    starts_list: list[np.ndarray] = []
    lengths_list: list[np.ndarray] = []
    win_read: list[np.ndarray] = []
    offset = 0
    for seq, rid in zip(sequences, read_ids):
        h = position_hashes(seq, params)
        if h.size == 0:
            continue
        starts, ends = layout.window_slices(seq.size)
        all_hashes.append(h)
        starts_list.append(starts + offset)
        lengths_list.append(ends - starts - params.k + 1)
        win_read.append(np.full(starts.size, rid, dtype=np.int64))
        offset += h.size
    if not all_hashes:
        return (
            np.full((0, params.sketch_size), SKETCH_PAD, dtype=np.uint64),
            np.zeros(0, dtype=np.int64),
        )
    hashes = np.concatenate(all_hashes)
    starts = np.concatenate(starts_list)
    lengths = np.concatenate(lengths_list)
    matrix = window_hash_matrix(hashes, starts, lengths, params.kmers_per_window)
    sketches = sketch_windows_batch(matrix, params.sketch_size)
    return sketches, np.concatenate(win_read)
