"""Hashing substrate: k-mer hash functions and minhash sketching.

Two hash functions appear in MetaCache (Section 4.1):

- ``h1`` maps canonical k-mers to *features*; the ``s`` smallest
  distinct feature values in a window form its minhash sketch.
- ``h2`` maps features to hash-table slots (the table applies its own
  probing on top, see :mod:`repro.warpcore.probing`).

Both are murmur-style integer finalizers, implemented as vectorized
NumPy transforms on uint64/uint32 arrays.
"""

from repro.hashing.hashes import fmix32, fmix64, hash_kmers_h1, hash_features_h2
from repro.hashing.minhash import (
    sketch_window,
    sketch_windows_batch,
    window_hash_matrix,
    SKETCH_PAD,
)
from repro.hashing.sketch import SketchParams, sketch_sequence, sketch_reads

__all__ = [
    "fmix32",
    "fmix64",
    "hash_kmers_h1",
    "hash_features_h2",
    "sketch_window",
    "sketch_windows_batch",
    "window_hash_matrix",
    "SKETCH_PAD",
    "SketchParams",
    "sketch_sequence",
    "sketch_reads",
]
