"""Murmur-style integer hash finalizers, vectorized.

These are the classic MurmurHash3 finalizers (fmix32 / fmix64): cheap,
invertible, statistically strong bit mixers.  MetaCache uses exactly
this family for both the k-mer feature hash (h1) and the table slot
hash (h2).  All functions operate element-wise on NumPy arrays with
explicit unsigned dtypes so the wrap-around arithmetic matches the
C++ semantics bit for bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fmix32", "fmix64", "hash_kmers_h1", "hash_features_h2"]

_U32 = np.uint32
_U64 = np.uint64


def fmix32(values: np.ndarray | int) -> np.ndarray:
    """MurmurHash3 32-bit finalizer (vectorized)."""
    h = np.asarray(values, dtype=_U32).copy()
    h ^= h >> _U32(16)
    h *= _U32(0x85EBCA6B)
    h ^= h >> _U32(13)
    h *= _U32(0xC2B2AE35)
    h ^= h >> _U32(16)
    return h


def fmix64(values: np.ndarray | int) -> np.ndarray:
    """MurmurHash3 64-bit finalizer (vectorized)."""
    h = np.asarray(values, dtype=_U64).copy()
    h ^= h >> _U64(33)
    h *= _U64(0xFF51AFD7ED558CCD)
    h ^= h >> _U64(33)
    h *= _U64(0xC4CEB9FE1A85EC53)
    h ^= h >> _U64(33)
    return h


def hash_kmers_h1(kmers: np.ndarray) -> np.ndarray:
    """Feature hash h1: canonical k-mer -> 32-bit feature value.

    Returned as uint64 (values < 2**32) so downstream code can reserve
    the full uint64 range above 2**32 for sentinels.  Matching the
    paper's layout, features are 32-bit which keeps the hash-table key
    arrays half the size of naive 64-bit keys.
    """
    return fmix64(np.asarray(kmers, dtype=_U64)) & _U64(0xFFFFFFFF)


def hash_features_h2(features: np.ndarray) -> np.ndarray:
    """Slot hash h2: feature -> 64-bit probe base.

    A different finalizer seed (xor constant) decorrelates h2 from h1;
    Section 4.1 explains this counteracts the biased distribution of
    sketch values (sketches select *small* h1 values, so hashing the
    feature again is required for uniform slot occupancy).
    """
    return fmix64(np.asarray(features, dtype=_U64) ^ _U64(0x9E3779B97F4A7C15))
