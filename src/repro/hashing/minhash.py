"""Minhash sketching: the s smallest *distinct* feature values per window.

Two implementations with identical semantics:

- :func:`sketch_window` -- scalar reference, one window at a time.
  Mirrors the CPU code path and anchors the property tests.
- :func:`sketch_windows_batch` -- the batched analogue of the GPU
  kernel (Section 5.3): all windows of a batch are laid out as rows
  of a matrix, rows are sorted (the bitonic-sort step), duplicates
  removed, and the first ``s`` survivors selected -- all with
  row-parallel vector ops, no Python loop over windows.

Padding uses ``SKETCH_PAD`` (all-ones uint64), which is larger than
any 32-bit feature so it sorts to the end of each row.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SKETCH_PAD", "sketch_window", "window_hash_matrix", "sketch_windows_batch"]

SKETCH_PAD = np.uint64(0xFFFFFFFFFFFFFFFF)


def sketch_window(hashes: np.ndarray, s: int) -> np.ndarray:
    """The ``s`` smallest distinct hash values of one window.

    Returns a sorted array of length <= s (shorter when the window
    holds fewer distinct values).
    """
    if s <= 0:
        raise ValueError(f"sketch size must be positive, got {s}")
    h = np.asarray(hashes, dtype=np.uint64)
    return np.unique(h)[:s]


def window_hash_matrix(
    hashes: np.ndarray, starts: np.ndarray, lengths: np.ndarray, width: int
) -> np.ndarray:
    """Gather per-window hash slices into a padded (n_windows, width) matrix.

    ``hashes`` holds the k-mer hash of every sequence position (invalid
    positions must already be ``SKETCH_PAD``); window ``i`` covers
    ``hashes[starts[i] : starts[i] + lengths[i]]``.  Built from one
    fancy-gather, so cost is O(total window area).
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    n = starts.size
    cols = np.arange(width, dtype=np.int64)
    idx = starts[:, None] + cols[None, :]
    in_range = cols[None, :] < lengths[:, None]
    idx = np.where(in_range, idx, 0)
    matrix = np.where(in_range, hashes[idx], SKETCH_PAD)
    return matrix


def sketch_windows_batch(matrix: np.ndarray, s: int) -> np.ndarray:
    """Row-wise minhash: ``s`` smallest distinct values per row.

    Returns an (n_rows, s) uint64 matrix padded with ``SKETCH_PAD``
    where a row has fewer than ``s`` distinct values.  This is the
    vectorized counterpart of the warp kernel's bitonic-sort +
    dedup + select pipeline.
    """
    if s <= 0:
        raise ValueError(f"sketch size must be positive, got {s}")
    if matrix.size == 0:
        return np.full((matrix.shape[0], s), SKETCH_PAD, dtype=np.uint64)
    m = np.sort(np.asarray(matrix, dtype=np.uint64), axis=1)
    n_rows, width = m.shape
    # First occurrence of each distinct value per row.
    is_new = np.empty_like(m, dtype=bool)
    is_new[:, 0] = m[:, 0] != SKETCH_PAD
    np.not_equal(m[:, 1:], m[:, :-1], out=is_new[:, 1:])
    is_new[:, 1:] &= m[:, 1:] != SKETCH_PAD
    # Rank of each distinct value within its row (1-based among new).
    rank = np.cumsum(is_new, axis=1)
    take = is_new & (rank <= s)
    out = np.full((n_rows, s), SKETCH_PAD, dtype=np.uint64)
    rows, cols = np.nonzero(take)
    out[rows, rank[rows, cols] - 1] = m[rows, cols]
    return out
